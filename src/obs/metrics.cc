#include "obs/metrics.h"

#include <bit>

namespace ioscc {

int Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0;
  return 1ull << (index - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Racy CAS-free min/max would lose updates under contention; a CAS loop
  // keeps them exact and the histograms are far from contended.
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    if (counter->value() != 0) snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    if (histogram->count() == 0) continue;
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      const uint64_t n = histogram->bucket(i);
      if (n != 0) h.buckets.emplace_back(Histogram::BucketLowerBound(i), n);
    }
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

}  // namespace ioscc
