// The canonical perf-trajectory record and its regression gate.
//
// AggregateBenchReportFiles folds the per-bench JSONL run reports
// (obs/run_report.h) written by scripts/run_all_benches.sh into one
// schema-versioned BENCH_<tag>.json: an environment block (threads,
// prefetch depth, cache budget, build type), per-bench run series with
// the logical/physical I/O ledgers, per-run phase profiles, histogram
// percentiles, and the bench_io threads x depth sweep rendered as a
// speedup curve.
//
// CompareBenchReports diffs a fresh record against a baseline:
//   - HARD gates (exit-code failures) on everything deterministic —
//     logical I/O counts, SCC results, iteration counts, budget
//     verdicts, and (when the two environments match) the physical
//     ledger. Two aggregations of the same tree must produce zero hard
//     or soft diffs.
//   - SOFT, tolerance-gated checks on the timing side (wall seconds,
//     read stalls) so the gate stays stable on shared runners. Timing
//     checks are skipped wherever either side omitted the field (e.g. a
//     baseline recorded with deterministic_only).
//
// The baseline defines the gate's scope: benches or runs present only
// in the fresh record are ignored, so a small committed baseline can
// gate a superset run. Schema documented in docs/PERFORMANCE.md
// ("Perf trajectory").

#ifndef IOSCC_OBS_BENCH_REPORT_H_
#define IOSCC_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ioscc {

inline constexpr char kBenchReportSchema[] = "ioscc-bench/v1";

struct BenchReportOptions {
  std::string tag = "local";
  // Omit everything that is not byte-reproducible across machines:
  // timing (wall seconds, stalls, phase profiles, histograms, speedups),
  // the physical I/O ledger (an async prefetcher's hit counts are race
  // outcomes), and whole runs that hit the time limit (a timed-out
  // ledger records where the clock cut it off). The mode committed
  // baselines are recorded in.
  bool deterministic_only = false;
  // Environment block, recorded verbatim for the comparator's
  // same-environment check.
  std::string build_type;
  int64_t threads = 0;
  int64_t prefetch_depth = 1;
  uint64_t cache_blocks = 0;
};

// Folds JSONL run-report files into one canonical BENCH json document.
// Each file contributes one bench, named by its basename minus ".jsonl";
// a file named bench_io.jsonl additionally feeds the threads x depth
// sweep/speedup section. Dataset paths are reduced to basenames (scratch
// directories are per-invocation; the file names inside are stable).
Status AggregateBenchReportFiles(const std::vector<std::string>& jsonl_paths,
                                 const BenchReportOptions& options,
                                 std::string* json_out);

struct BenchCompareOptions {
  // Soft gate: fresh wall time may exceed baseline by this fraction
  // (plus a 100 ms absolute grace) before a soft issue is raised.
  double time_tolerance = 0.5;
  // Soft gate for read_stall_micros, same shape (10 ms absolute grace).
  double stall_tolerance = 2.0;
};

struct BenchCompareIssue {
  bool hard = false;
  std::string message;
};

struct BenchCompareResult {
  std::vector<BenchCompareIssue> issues;
  uint64_t deterministic_checks = 0;  // hard comparisons performed
  uint64_t timing_checks = 0;         // soft comparisons performed

  size_t hard_failures() const;
  size_t soft_failures() const;
  // True when no hard gate fired (soft issues alone do not fail).
  bool pass() const { return hard_failures() == 0; }
  // Multi-line human-readable verdict.
  std::string Format() const;
};

// Compares two BENCH json documents (baseline defines the gate scope).
// Returns non-OK only for malformed input; gate verdicts land in *out.
Status CompareBenchReports(const std::string& baseline_json,
                           const std::string& fresh_json,
                           const BenchCompareOptions& options,
                           BenchCompareResult* out);

// File-reading convenience wrappers for the example tools.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace ioscc

#endif  // IOSCC_OBS_BENCH_REPORT_H_
