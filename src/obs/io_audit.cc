#include "obs/io_audit.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <list>
#include <unordered_map>
#include <unordered_set>

namespace ioscc {
namespace {

// Audit-file grammar (one record per line, space-separated):
//   ioscc-audit v1
//   file <id> <path...>
//   a <r|w> <file_id> <block>
//   budget <algorithm> <model> <bound> <measured> <ratio> <PASS|FAIL>
//          <dataset...>
// Access seq numbers are implicit (line order); <path...>/<dataset...>
// run to end-of-line so paths with spaces survive the round trip.
constexpr char kMagicLine[] = "ioscc-audit v1";

}  // namespace

Status WriteAuditLog(const AuditLogData& log, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open audit file " + path + ": " +
                           std::strerror(errno));
  }
  bool ok = std::fprintf(file, "%s\n", kMagicLine) > 0;
  for (size_t id = 0; ok && id < log.files.size(); ++id) {
    ok = std::fprintf(file, "file %zu %s\n", id, log.files[id].c_str()) > 0;
  }
  for (const BlockAccessRecord& a : log.accesses) {
    if (!ok) break;
    ok = std::fprintf(file, "a %c %" PRIu32 " %" PRIu64 "\n",
                      a.is_write ? 'w' : 'r', a.file_id, a.block) > 0;
  }
  for (const AuditBudgetRecord& b : log.budgets) {
    if (!ok) break;
    ok = std::fprintf(file, "budget %s %s %" PRIu64 " %" PRIu64 " %.6f %s %s\n",
                      b.algorithm.c_str(), b.model.c_str(), b.bound_ios,
                      b.measured_ios, b.ratio, b.pass ? "PASS" : "FAIL",
                      b.dataset.c_str()) > 0;
  }
  if (std::fclose(file) != 0) ok = false;
  if (!ok) return Status::IoError("short write to audit file " + path);
  return Status::OK();
}

Status LoadAuditLog(const std::string& path, AuditLogData* log) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::IoError("cannot open audit file " + path + ": " +
                           std::strerror(errno));
  }
  *log = AuditLogData();
  char line[4096];
  uint64_t line_no = 0;
  uint64_t next_seq = 0;
  Status status = Status::OK();
  auto corrupt = [&](const char* what) {
    return Status::Corruption(path + ":" + std::to_string(line_no) + ": " +
                              what);
  };
  while (status.ok() && std::fgets(line, sizeof line, file) != nullptr) {
    ++line_no;
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (line_no == 1) {
      if (std::strcmp(line, kMagicLine) != 0) {
        status = corrupt("not an ioscc audit log (bad magic line)");
      }
      continue;
    }
    if (len == 0) continue;
    if (std::strncmp(line, "file ", 5) == 0) {
      char* end = nullptr;
      const unsigned long long id = std::strtoull(line + 5, &end, 10);
      if (end == line + 5 || *end != ' ') {
        status = corrupt("malformed file record");
        continue;
      }
      if (id != log->files.size()) {
        status = corrupt("file ids must be dense and ascending");
        continue;
      }
      log->files.emplace_back(end + 1);
    } else if (std::strncmp(line, "a ", 2) == 0) {
      BlockAccessRecord a;
      char op = '\0';
      if (std::sscanf(line, "a %c %" SCNu32 " %" SCNu64, &op, &a.file_id,
                      &a.block) != 3 ||
          (op != 'r' && op != 'w')) {
        status = corrupt("malformed access record");
        continue;
      }
      a.is_write = op == 'w';
      a.seq = next_seq++;
      log->accesses.push_back(a);
    } else if (std::strncmp(line, "budget ", 7) == 0) {
      // Fixed-width prefix, free-form dataset tail.
      char algorithm[256], model[256], verdict[16];
      AuditBudgetRecord b;
      int consumed = 0;
      if (std::sscanf(line, "budget %255s %255s %" SCNu64 " %" SCNu64
                      " %lf %15s %n",
                      algorithm, model, &b.bound_ios, &b.measured_ios,
                      &b.ratio, verdict, &consumed) != 6) {
        status = corrupt("malformed budget record");
        continue;
      }
      b.algorithm = algorithm;
      b.model = model;
      b.pass = std::strcmp(verdict, "PASS") == 0;
      if (consumed > 0 && static_cast<size_t>(consumed) <= len) {
        b.dataset = line + consumed;
      }
      log->budgets.push_back(std::move(b));
    } else {
      status = corrupt("unknown record type");
    }
  }
  std::fclose(file);
  if (status.ok() && line_no == 0) {
    status = Status::Corruption(path + ": empty audit file");
  }
  return status;
}

std::vector<FileAccessPattern> AnalyzeAccessPatterns(
    const AuditLogData& log) {
  struct FileState {
    FileAccessPattern pattern;
    bool any_access = false;
    uint64_t prev_block = 0;
    uint64_t run_length = 0;
    std::unordered_set<uint64_t> touched;
    std::unordered_set<uint64_t> read_before;
  };
  std::unordered_map<uint32_t, FileState> states;

  for (const BlockAccessRecord& a : log.accesses) {
    FileState& s = states[a.file_id];
    FileAccessPattern& p = s.pattern;
    p.file_id = a.file_id;
    if (a.is_write) {
      ++p.writes;
    } else {
      ++p.reads;
      if (!s.read_before.insert(a.block).second) ++p.re_reads;
    }
    s.touched.insert(a.block);

    if (!s.any_access) {
      s.any_access = true;
      p.sequential_runs = 1;
      s.run_length = 1;
    } else if (a.block == s.prev_block + 1) {
      ++p.sequential_accesses;
      ++s.run_length;
    } else {
      ++p.random_jumps;
      ++p.sequential_runs;
      p.longest_run = std::max(p.longest_run, s.run_length);
      s.run_length = 1;
    }
    s.prev_block = a.block;
  }

  std::vector<FileAccessPattern> patterns;
  patterns.reserve(states.size());
  for (auto& [id, s] : states) {
    s.pattern.longest_run = std::max(s.pattern.longest_run, s.run_length);
    s.pattern.distinct_blocks = s.touched.size();
    if (id < log.files.size()) s.pattern.path = log.files[id];
    patterns.push_back(std::move(s.pattern));
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const FileAccessPattern& a, const FileAccessPattern& b) {
              return a.file_id < b.file_id;
            });
  return patterns;
}

CacheSimPoint SimulateLruCache(const AuditLogData& log,
                               uint64_t budget_blocks) {
  CacheSimPoint point;
  point.budget_blocks = budget_blocks;
  if (budget_blocks == 0) {
    for (const BlockAccessRecord& a : log.accesses) {
      if (!a.is_write) ++point.misses;
    }
    return point;
  }

  // MRU at the front. The map holds list iterators for O(1) promotion.
  std::list<BlockId> lru;
  std::unordered_map<BlockId, std::list<BlockId>::iterator, BlockIdHash>
      resident;
  resident.reserve(budget_blocks * 2);

  for (const BlockAccessRecord& a : log.accesses) {
    const BlockId key{a.file_id, a.block};
    auto it = resident.find(key);
    if (it != resident.end()) {
      if (!a.is_write) ++point.hits;
      lru.splice(lru.begin(), lru, it->second);  // promote to MRU
      continue;
    }
    if (!a.is_write) ++point.misses;
    lru.push_front(key);
    resident[key] = lru.begin();
    if (resident.size() > budget_blocks) {
      resident.erase(lru.back());
      lru.pop_back();
    }
  }
  return point;
}

CacheSimPoint SimulateClockCache(const AuditLogData& log,
                                 uint64_t budget_blocks) {
  CacheSimPoint point;
  point.budget_blocks = budget_blocks;
  if (budget_blocks == 0) {
    for (const BlockAccessRecord& a : log.accesses) {
      if (!a.is_write) ++point.misses;
    }
    return point;
  }

  // The ring in sweep order; the hand points at the next victim
  // candidate (end() wraps to begin()). The map holds the frame's ring
  // position and its reference bit.
  struct Frame {
    std::list<BlockId>::iterator pos;
    bool ref = false;
  };
  std::list<BlockId> ring;
  std::unordered_map<BlockId, Frame, BlockIdHash> resident;
  resident.reserve(budget_blocks * 2);
  auto hand = ring.end();

  for (const BlockAccessRecord& a : log.accesses) {
    const BlockId key{a.file_id, a.block};
    auto it = resident.find(key);
    if (it != resident.end()) {
      // Resident: second chance — set the reference bit, no movement.
      if (!a.is_write) ++point.hits;
      it->second.ref = true;
      continue;
    }
    if (!a.is_write) ++point.misses;
    while (resident.size() >= budget_blocks) {
      if (hand == ring.end()) hand = ring.begin();
      Frame& f = resident[*hand];
      if (f.ref) {
        f.ref = false;
        ++hand;
      } else {
        resident.erase(*hand);
        hand = ring.erase(hand);
      }
    }
    // Insert just behind the hand: the new frame is examined only after
    // a full sweep, the classic clock placement.
    Frame f;
    f.pos = ring.insert(hand, key);
    f.ref = true;
    resident[key] = f;
  }
  return point;
}

CacheSimPoint SimulateCache(const AuditLogData& log, uint64_t budget_blocks,
                            CacheSimPolicy policy) {
  return policy == CacheSimPolicy::kClock
             ? SimulateClockCache(log, budget_blocks)
             : SimulateLruCache(log, budget_blocks);
}

std::vector<CacheSimPoint> CacheSavingsCurve(
    const AuditLogData& log, const std::vector<uint64_t>& budgets,
    CacheSimPolicy policy) {
  std::vector<CacheSimPoint> curve;
  curve.reserve(budgets.size());
  for (uint64_t budget : budgets) {
    if (budget == 0) continue;
    curve.push_back(SimulateCache(log, budget, policy));
  }
  return curve;
}

}  // namespace ioscc
