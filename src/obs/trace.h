// Scoped span tracing with logical-I/O attribution.
//
// A TraceSpan marks one phase of work (a tree-construction pass, a sort
// merge, a whole algorithm run). On entry it snapshots the wall clock and,
// optionally, an IoStats counter; on exit it records the deltas into the
// process-wide Tracer, so a run decomposes into nested spans that each own
// their share of the block I/Os — the per-phase cost attribution the
// paper's tables are built from.
//
// When no Tracer (and no PhaseProfiler, obs/phase_profiler.h) is
// installed — the default — every TraceSpan constructor inlines to two
// relaxed atomic loads and the destructor to a flag check: algorithm hot
// loops pay nothing for being instrumented. Span names must be string
// literals (or otherwise outlive the span); they are only copied when a
// sink is installed. With a PhaseProfiler installed, each span
// additionally samples getrusage at entry/exit and reports its wall/CPU/
// peak-RSS deltas both to the profiler and into the trace args.
//
// The recorded events export to the Chrome trace_event JSON format, so a
// trace file opens directly in chrome://tracing or https://ui.perfetto.dev
// (see docs/OBSERVABILITY.md for the span-naming conventions).

#ifndef IOSCC_OBS_TRACE_H_
#define IOSCC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "obs/phase_profiler.h"
#include "util/status.h"

namespace ioscc {

// One completed span. Events are recorded at span *exit*, so the vector is
// ordered by end time; nesting is recoverable from [start_us, start_us +
// dur_us) containment or from `depth`.
struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;  // microseconds since the tracer's epoch
  uint64_t dur_us = 0;
  uint32_t depth = 0;     // 0 = top-level span
  bool has_io = false;    // io_delta is meaningful
  IoStats io_delta;       // I/O performed while the span was open
  // Resource deltas, present only when a PhaseProfiler was installed
  // (obs/phase_profiler.h): CPU time consumed while the span was open
  // and the process peak RSS at span exit.
  bool has_resources = false;
  uint64_t cpu_user_micros = 0;
  uint64_t cpu_sys_micros = 0;
  uint64_t max_rss_kb = 0;
};

// Collects spans for one process (or one benchmark binary). Install with
// SetTracer(); the tracer must outlive every span opened while installed.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  // Microseconds since this tracer was created.
  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void Record(TraceEvent event);

  size_t event_count() const;
  // Snapshot of the recorded events (copy; safe while spans are open).
  std::vector<TraceEvent> events() const;

  // Chrome trace_event JSON ({"traceEvents":[...]}): complete ("X") events
  // with the I/O delta in args.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

namespace internal_trace {
inline std::atomic<Tracer*> g_tracer{nullptr};
// Current span nesting depth of this thread.
extern thread_local uint32_t tls_depth;
}  // namespace internal_trace

// Installs `tracer` as the process-wide sink (nullptr disables tracing).
// Not synchronized against open spans: install before starting work.
inline void SetTracer(Tracer* tracer) {
  internal_trace::g_tracer.store(tracer, std::memory_order_release);
}

inline Tracer* GetTracer() {
  return internal_trace::g_tracer.load(std::memory_order_relaxed);
}

// RAII span. `name` must outlive the span (use string literals). When `io`
// is non-null the span attributes *io's growth between entry and exit to
// itself. Active when a Tracer and/or a PhaseProfiler is installed; each
// installed sink receives the span on exit.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const IoStats* io = nullptr)
      : tracer_(GetTracer()), profiler_(GetPhaseProfiler()) {
    if (tracer_ == nullptr && profiler_ == nullptr) {
      return;  // no sink installed: no-op span
    }
    Enter(name, io);
  }

  ~TraceSpan() {
    if (active_) Finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Ends the span now (idempotent; the destructor becomes a no-op).
  void Close() {
    if (active_) Finish();
  }

 private:
  void Enter(const char* name, const IoStats* io);
  void Finish();

  Tracer* tracer_;
  PhaseProfiler* profiler_;
  bool active_ = false;
  const char* name_ = nullptr;
  const IoStats* io_ = nullptr;
  IoStats enter_io_;
  ResourceSample enter_res_;
  uint64_t start_us_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace ioscc

#endif  // IOSCC_OBS_TRACE_H_
