// Block-access auditing: access-pattern analysis over a recorded log of
// logical block transfers.
//
// The io layer's BlockAccessLog (io/block_file.h) records every logical
// block access as (file_id, block, op, seq). This header defines the
// *plain-data* side of that pipeline so it can live below the io layer in
// the dependency order: the serialized audit-log format, per-file
// access-pattern analysis (sequential runs vs random jumps, re-read
// accounting), and an LRU block-cache simulator that replays the log at a
// given budget to report how many reads a c-block cache would have
// absorbed.
//
// The analysis is what turns the paper's headline "# of block I/Os" into
// an explanation: a semi-external scan shows up as one long sequential
// run per pass (jumps == passes - 1), re-reads quantify how much traffic
// repeated passes cost, and the cache-savings curve shows whether buying
// memory would have bought back I/Os.

#ifndef IOSCC_OBS_IO_AUDIT_H_
#define IOSCC_OBS_IO_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ioscc {

// (file_id, block) identity shared by every layer that keys on a block:
// the cache simulators below and the real buffer manager
// (io/buffer_manager.h). A full-width pair — the former single-uint64_t
// packing ((file_id << 40) | block) silently aliased a block index
// >= 2^40 or a file id >= 2^24 onto another block, corrupting both cache
// contents and audit identity.
struct BlockId {
  uint32_t file_id = 0;
  uint64_t block = 0;

  friend bool operator==(const BlockId& a, const BlockId& b) {
    return a.file_id == b.file_id && a.block == b.block;
  }
  friend bool operator!=(const BlockId& a, const BlockId& b) {
    return !(a == b);
  }
};

// splitmix64-style mix over both halves; no information is discarded, so
// distinct (file, block) pairs can never collide by construction of the
// key (only by hash-bucket chance, which the table resolves).
struct BlockIdHash {
  size_t operator()(const BlockId& id) const {
    uint64_t x = id.block + 0x9E3779B97F4A7C15ull *
                                (static_cast<uint64_t>(id.file_id) + 1);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

// One logical block access. `seq` is the process-global order of the
// access across all files (0-based), so interleavings between files are
// recoverable.
struct BlockAccessRecord {
  uint32_t file_id = 0;
  uint64_t block = 0;
  bool is_write = false;
  uint64_t seq = 0;
};

// One cost-model conformance verdict (harness/io_budget.h produces these;
// they ride along in the audit file so io_audit_tool can print them
// without re-running anything).
struct AuditBudgetRecord {
  std::string algorithm;  // "1PB-SCC", ...
  std::string model;      // bound used, e.g. "3-scans-per-iteration"
  uint64_t bound_ios = 0;
  uint64_t measured_ios = 0;
  double ratio = 0;       // measured / bound
  bool pass = false;      // measured <= bound
  std::string dataset;    // edge-file path (kept last: may contain spaces)
};

// A full audit log: the file table, the access stream (ascending seq),
// and any budget verdicts appended by the harness.
struct AuditLogData {
  std::vector<std::string> files;  // index == file_id
  std::vector<BlockAccessRecord> accesses;
  std::vector<AuditBudgetRecord> budgets;
};

// Text serialization ("ioscc-audit v1" header; one record per line).
// The format is line-based and documented in docs/OBSERVABILITY.md.
Status WriteAuditLog(const AuditLogData& log, const std::string& path);
Status LoadAuditLog(const std::string& path, AuditLogData* log);

// Per-file access-pattern summary.
//
// Classification walks each file's accesses in seq order: an access to
// block b directly after an access to block b-1 of the same file extends
// the current sequential run; anything else starts a new run and counts
// as one random jump (the file's very first access opens run #1 and is
// neither sequential nor a jump). A *re-read* is a read of a block this
// file has already read before — the traffic a block cache could have
// absorbed.
struct FileAccessPattern {
  uint32_t file_id = 0;
  std::string path;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t distinct_blocks = 0;     // distinct blocks touched (any op)
  uint64_t sequential_accesses = 0; // accesses that extended a run
  uint64_t random_jumps = 0;        // run breaks after the first access
  uint64_t sequential_runs = 0;     // maximal runs (jumps + 1 if nonempty)
  uint64_t longest_run = 0;         // accesses in the longest run
  uint64_t re_reads = 0;            // reads of an already-read block

  double ReReadRatio() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(re_reads) /
                            static_cast<double>(reads);
  }
};

// One pattern per file id present in the log, ascending by file id.
std::vector<FileAccessPattern> AnalyzeAccessPatterns(const AuditLogData& log);

// Result of replaying the log's *reads* through an LRU cache of
// `budget_blocks` blocks (writes install the block but are never counted
// as hits: every logical write still reaches disk in our model). `misses`
// is the read I/O a c-block cache would still have performed; `hits` is
// what it would have absorbed.
struct CacheSimPoint {
  uint64_t budget_blocks = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

CacheSimPoint SimulateLruCache(const AuditLogData& log,
                               uint64_t budget_blocks);

// Clock (second-chance) replay with the exact transition rules the real
// buffer manager (io/buffer_manager.h, EvictionPolicy::kClock) applies to
// its logical accesses: a resident access sets the frame's reference bit
// (reads count a hit, writes count nothing); a miss installs the block
// just behind the hand with its reference bit set (reads count a miss,
// writes count nothing); once residency would exceed the budget the hand
// sweeps, clearing reference bits until it lands on an unreferenced frame
// and evicts it. tests/buffer_manager_test.cc pins down that a run's real
// clock-policy hit/miss counts equal this replay of the run's audit log.
CacheSimPoint SimulateClockCache(const AuditLogData& log,
                                 uint64_t budget_blocks);

// Replay policy selector mirroring the buffer manager's EvictionPolicy.
enum class CacheSimPolicy { kLru, kClock };

CacheSimPoint SimulateCache(const AuditLogData& log, uint64_t budget_blocks,
                            CacheSimPolicy policy);

// Replays once per budget; budgets of zero are skipped.
std::vector<CacheSimPoint> CacheSavingsCurve(
    const AuditLogData& log, const std::vector<uint64_t>& budgets,
    CacheSimPolicy policy = CacheSimPolicy::kLru);

}  // namespace ioscc

#endif  // IOSCC_OBS_IO_AUDIT_H_
