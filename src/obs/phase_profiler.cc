#include "obs/phase_profiler.h"

#include <algorithm>
#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define IOSCC_HAVE_GETRUSAGE 1
#endif

namespace ioscc {

ResourceSample SampleResourceUsage() {
  ResourceSample sample;
#ifdef IOSCC_HAVE_GETRUSAGE
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    auto micros = [](const struct timeval& tv) {
      return static_cast<uint64_t>(tv.tv_sec) * 1000000ull +
             static_cast<uint64_t>(tv.tv_usec);
    };
    sample.cpu_user_micros = micros(usage.ru_utime);
    sample.cpu_sys_micros = micros(usage.ru_stime);
#if defined(__APPLE__)
    // ru_maxrss is bytes on Darwin, kilobytes on Linux/BSD.
    sample.max_rss_kb = static_cast<uint64_t>(usage.ru_maxrss) / 1024;
#else
    sample.max_rss_kb = static_cast<uint64_t>(usage.ru_maxrss);
#endif
  }
#endif
  return sample;
}

uint64_t ProcessMonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void PhaseProfiler::RecordSpan(const char* name, uint64_t wall_micros,
                               uint64_t cpu_user_micros,
                               uint64_t cpu_sys_micros, uint64_t max_rss_kb,
                               bool has_io, const IoStats& io_delta) {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseProfile& phase = phases_[name];
  if (phase.name.empty()) phase.name = name;
  phase.spans += 1;
  phase.wall_micros += wall_micros;
  phase.cpu_user_micros += cpu_user_micros;
  phase.cpu_sys_micros += cpu_sys_micros;
  phase.max_rss_kb = std::max(phase.max_rss_kb, max_rss_kb);
  if (has_io) {
    phase.has_io = true;
    phase.io += io_delta;
  }
}

std::vector<PhaseProfile> PhaseProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PhaseProfile> out;
  out.reserve(phases_.size());
  for (const auto& [name, phase] : phases_) out.push_back(phase);
  return out;  // map iteration order: already sorted by name
}

std::vector<PhaseProfile> PhaseProfiler::Delta(
    const std::vector<PhaseProfile>& before,
    const std::vector<PhaseProfile>& after) {
  auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  std::vector<PhaseProfile> out;
  for (const PhaseProfile& now : after) {
    const PhaseProfile* prev = nullptr;
    for (const PhaseProfile& p : before) {
      if (p.name == now.name) {
        prev = &p;
        break;
      }
    }
    PhaseProfile delta = now;
    if (prev != nullptr) {
      delta.spans = sub(now.spans, prev->spans);
      delta.wall_micros = sub(now.wall_micros, prev->wall_micros);
      delta.cpu_user_micros = sub(now.cpu_user_micros, prev->cpu_user_micros);
      delta.cpu_sys_micros = sub(now.cpu_sys_micros, prev->cpu_sys_micros);
      delta.io = now.io - prev->io;
      // max_rss_kb stays `now`'s value: the high-water mark is monotone.
    }
    if (delta.spans > 0) out.push_back(std::move(delta));
  }
  return out;
}

}  // namespace ioscc
