// Minimal streaming JSON writer for the observability sinks (trace files,
// run reports). Produces compact one-line-friendly JSON; the writer owns
// the comma/nesting bookkeeping so call sites read like the schema.

#ifndef IOSCC_OBS_JSON_H_
#define IOSCC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ioscc {

// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object member key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // The accumulated JSON text; the writer is reusable after Take.
  std::string Take();
  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  // True once a value has been emitted at the current nesting level (i.e.
  // the next sibling needs a leading comma).
  std::vector<bool> has_value_{false};
  bool after_key_ = false;
};

}  // namespace ioscc

#endif  // IOSCC_OBS_JSON_H_
