#include "obs/json_value.h"

#include <cctype>
#include <cstdlib>

namespace ioscc {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    pos_ = 0;
    if (!ParseValue(out)) return Fail(error);
    SkipSpace();
    if (pos_ != text_.size()) return Fail(error);
    return true;
  }

 private:
  bool Fail(std::string* error) {
    if (error != nullptr) {
      *error = "JSON parse error at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          // The writers in obs/json.cc only escape control characters;
          // keep the decoded code point one byte.
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    const std::string literal(text_.substr(start, pos_ - start));
    out->number = std::strtod(literal.c_str(), nullptr);
    if (integral && literal[0] != '-') {
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(literal.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->is_uint = true;
        out->uint_value = static_cast<uint64_t>(v);
      }
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::operator[](const std::string& key) const {
  static const JsonValue kNullValue;
  auto it = object.find(key);
  return it == object.end() ? kNullValue : it->second;
}

uint64_t JsonValue::AsUInt(uint64_t default_value) const {
  if (!is_number()) return default_value;
  if (is_uint) return uint_value;
  return number >= 0 ? static_cast<uint64_t>(number) : default_value;
}

double JsonValue::AsDouble(double default_value) const {
  return is_number() ? number : default_value;
}

bool JsonValue::AsBool(bool default_value) const {
  return is_bool() ? bool_value : default_value;
}

const std::string& JsonValue::AsString() const {
  static const std::string kEmpty;
  return is_string() ? string_value : kEmpty;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text).Parse(out, error);
}

}  // namespace ioscc
