#include "obs/bench_report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/json.h"
#include "obs/json_value.h"
#include "obs/metrics.h"
#include "util/build_info.h"

namespace ioscc {
namespace {

// ---------------------------------------------------------------------------
// Field classification for the canonicalizer and the comparator. Keyed by
// the run-report field names (obs/run_report.cc WriteIoStats).

// Logical I/O ledger: byte-identical across cache/thread configurations
// (io/io_stats.h), so these are unconditionally hard-gated.
constexpr const char* kLogicalIoFields[] = {
    "blocks_read",  "blocks_written", "bytes_read",    "bytes_written",
    "block_ios",    "read_retries",   "write_retries",
};

// Physical ledger + pipeline accounting: deterministic for a fixed
// (threads, prefetch depth, cache budget) configuration, so hard-gated
// only when the two environment blocks match.
constexpr const char* kPhysicalIoFields[] = {
    "physical_blocks_read", "physical_block_ios", "cache_hits",
    "prefetch_hits",        "prefetched_blocks",  "prefetch_depth_used",
};

// Timing: never deterministic; soft-gated (read_stall_micros) or ignored.
constexpr const char* kTimingIoFields[] = {"read_stall_micros"};

bool Contains(const char* const* begin, const char* const* end,
              const std::string& name) {
  for (const char* const* it = begin; it != end; ++it) {
    if (name == *it) return true;
  }
  return false;
}

bool IsLogicalIoField(const std::string& name) {
  return Contains(std::begin(kLogicalIoFields), std::end(kLogicalIoFields),
                  name);
}
bool IsPhysicalIoField(const std::string& name) {
  return Contains(std::begin(kPhysicalIoFields), std::end(kPhysicalIoFields),
                  name);
}
bool IsTimingIoField(const std::string& name) {
  return Contains(std::begin(kTimingIoFields), std::end(kTimingIoFields),
                  name);
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FmtUInt(uint64_t v) { return std::to_string(v); }

// Generic re-serializer. JsonValue objects are std::map-backed, so keys
// come out sorted — two aggregations of the same inputs are byte-equal.
void WriteJsonValue(JsonWriter* json, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull:
      json->Null();
      break;
    case JsonValue::Type::kBool:
      json->Bool(v.bool_value);
      break;
    case JsonValue::Type::kNumber:
      if (v.is_uint) {
        json->UInt(v.uint_value);
      } else {
        json->Double(v.number);
      }
      break;
    case JsonValue::Type::kString:
      json->String(v.string_value);
      break;
    case JsonValue::Type::kArray:
      json->BeginArray();
      for (const JsonValue& item : v.array) WriteJsonValue(json, item);
      json->EndArray();
      break;
    case JsonValue::Type::kObject:
      json->BeginObject();
      for (const auto& [key, value] : v.object) {
        json->Key(key);
        WriteJsonValue(json, value);
      }
      json->EndObject();
      break;
  }
}

// Strips members that are not byte-reproducible across machines from a
// run object in place, recursing into nested io objects: wall/CPU/RSS
// timing, the per-phase profiles, and the physical I/O ledger (with the
// async prefetcher installed, prefetch_hits et al. are race outcomes;
// only the logical ledger is machine-independent).
void StripNondeterministic(JsonValue* v) {
  if (!v->is_object()) return;
  v->object.erase("seconds");
  v->object.erase("wall_micros");
  v->object.erase("cpu_user_micros");
  v->object.erase("cpu_sys_micros");
  v->object.erase("max_rss_kb");
  v->object.erase("phases");
  // Kernel wall time (the bare "micros" key occurs only in the kernel
  // object); its sibling invocation count is deterministic and stays.
  v->object.erase("micros");
  for (const char* field : kTimingIoFields) v->object.erase(field);
  for (const char* field : kPhysicalIoFields) v->object.erase(field);
  for (auto& [key, value] : v->object) {
    (void)key;
    StripNondeterministic(&value);
  }
}

// One parsed JSONL run-report file.
struct BenchFile {
  std::string name;  // basename minus .jsonl
  std::vector<JsonValue> runs;
  std::vector<JsonValue> metrics;     // {"type":"metrics"} records
  std::vector<JsonValue> profiles;    // {"type":"phases"} records
  std::vector<JsonValue> timeseries;  // {"type":"timeseries"} records
  std::vector<JsonValue> watchdogs;   // {"type":"watchdog"} records
};

Status ParseBenchFile(const std::string& path, BenchFile* out) {
  std::string text;
  IOSCC_RETURN_IF_ERROR(ReadFileToString(path, &text));
  std::string base = Basename(path);
  const size_t dot = base.rfind(".jsonl");
  if (dot != std::string::npos && dot == base.size() - 6) {
    base = base.substr(0, dot);
  }
  out->name = base;

  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    ++line_no;
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    JsonValue record;
    std::string error;
    if (!ParseJson(line, &record, &error)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) + ": " +
                                error);
    }
    const std::string& type = record["type"].AsString();
    if (type == "run") {
      out->runs.push_back(std::move(record));
    } else if (type == "metrics") {
      out->metrics.push_back(std::move(record));
    } else if (type == "phases") {
      out->profiles.push_back(std::move(record));
    } else if (type == "timeseries") {
      out->timeseries.push_back(std::move(record));
    } else if (type == "watchdog") {
      out->watchdogs.push_back(std::move(record));
    }
    // Unknown record types are skipped: the JSONL schema is append-only.
  }
  return Status::OK();
}

// Rebuilds a HistogramSnapshot from a parsed {"type":"metrics"} histogram
// so percentile extraction goes through the one shared implementation.
HistogramSnapshot SnapshotFromJson(const JsonValue& h) {
  HistogramSnapshot snap;
  snap.count = h["count"].AsUInt();
  snap.sum = h["sum"].AsUInt();
  snap.min = h["min"].AsUInt();
  snap.max = h["max"].AsUInt();
  if (h["buckets"].is_array()) {
    for (const JsonValue& pair : h["buckets"].array) {
      if (pair.is_array() && pair.array.size() == 2) {
        snap.buckets.emplace_back(pair.array[0].AsUInt(),
                                  pair.array[1].AsUInt());
      }
    }
  }
  return snap;
}

void WriteHistograms(JsonWriter* json, const BenchFile& bench) {
  // Last metrics record wins (benches snapshot once at shutdown).
  if (bench.metrics.empty()) return;
  const JsonValue& histograms = bench.metrics.back()["histograms"];
  if (!histograms.is_object() || histograms.object.empty()) return;
  json->Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms.object) {
    const HistogramSnapshot snap = SnapshotFromJson(h);
    json->Key(name).BeginObject();
    json->Key("count").UInt(snap.count);
    json->Key("sum").UInt(snap.sum);
    json->Key("min").UInt(snap.min);
    json->Key("max").UInt(snap.max);
    json->Key("mean").Double(snap.Mean());
    json->Key("p50").Double(snap.Percentile(50));
    json->Key("p90").Double(snap.Percentile(90));
    json->Key("p99").Double(snap.Percentile(99));
    json->EndObject();
  }
  json->EndObject();
}

// A bench_io sweep point: one (workload, threads, depth) run record.
struct SweepKey {
  std::string workload;
  uint64_t io_threads = 0;
  uint64_t prefetch_depth = 0;

  bool operator<(const SweepKey& other) const {
    if (workload != other.workload) return workload < other.workload;
    if (io_threads != other.io_threads) return io_threads < other.io_threads;
    return prefetch_depth < other.prefetch_depth;
  }
};

SweepKey SweepKeyFromRun(const JsonValue& run) {
  SweepKey key;
  key.workload = run["algorithm"].AsString();
  // bench_io omits the cache object at the (threads=0, depth=0) baseline
  // point (run_report.cc emits it only when a field is nonzero).
  key.io_threads = run["cache"]["io_threads"].AsUInt();
  key.prefetch_depth = run["cache"]["prefetch_depth"].AsUInt();
  return key;
}

void WriteBenchIoSection(JsonWriter* json, const BenchFile& bench,
                         bool deterministic_only) {
  std::map<SweepKey, const JsonValue*> points;
  for (const JsonValue& run : bench.runs) {
    points[SweepKeyFromRun(run)] = &run;  // last run per point wins
  }
  json->Key("bench_io").BeginObject();
  json->Key("sweep").BeginArray();
  for (const auto& [key, run] : points) {
    const JsonValue& io = (*run)["io"];
    json->BeginObject();
    json->Key("workload").String(key.workload);
    json->Key("io_threads").UInt(key.io_threads);
    json->Key("prefetch_depth").UInt(key.prefetch_depth);
    json->Key("io").BeginObject();
    for (const auto& [field, value] : io.object) {
      if (deterministic_only &&
          (IsTimingIoField(field) || IsPhysicalIoField(field))) {
        continue;
      }
      json->Key(field);
      WriteJsonValue(json, value);
    }
    json->EndObject();
    if (!deterministic_only) {
      const double seconds = (*run)["seconds"].AsDouble();
      const double mb = static_cast<double>(io["bytes_read"].AsUInt() +
                                            io["bytes_written"].AsUInt()) /
                        1e6;
      json->Key("seconds").Double(seconds);
      json->Key("mb_per_sec").Double(seconds > 0 ? mb / seconds : 0.0);
      json->Key("read_stall_micros").UInt(io["read_stall_micros"].AsUInt());
    }
    json->EndObject();
  }
  json->EndArray();
  if (!deterministic_only) {
    // Speedup curve: each point's throughput relative to the unthreaded
    // (threads=0, depth=0) point of the same workload.
    json->Key("speedup").BeginArray();
    for (const auto& [key, run] : points) {
      SweepKey base_key{key.workload, 0, 0};
      auto base_it = points.find(base_key);
      if (base_it == points.end()) continue;
      const double base_seconds = (*base_it->second)["seconds"].AsDouble();
      const double seconds = (*run)["seconds"].AsDouble();
      json->BeginObject();
      json->Key("workload").String(key.workload);
      json->Key("io_threads").UInt(key.io_threads);
      json->Key("prefetch_depth").UInt(key.prefetch_depth);
      json->Key("speedup").Double(seconds > 0 ? base_seconds / seconds : 0.0);
      json->EndObject();
    }
    json->EndArray();
  }
  json->EndObject();
}

// A bench_kernel sweep point: one (dataset, kernel, threads) run record.
struct KernelKey {
  std::string dataset;
  std::string kernel;
  uint64_t threads = 0;

  bool operator<(const KernelKey& other) const {
    if (dataset != other.dataset) return dataset < other.dataset;
    if (kernel != other.kernel) return kernel < other.kernel;
    return threads < other.threads;
  }
};

KernelKey KernelKeyFromRun(const JsonValue& run) {
  KernelKey key;
  key.dataset = run["dataset"].AsString();
  key.kernel = run["kernel"]["name"].AsString();
  key.threads = run["kernel"]["threads"].AsUInt();
  return key;
}

void WriteBenchKernelSection(JsonWriter* json, const BenchFile& bench,
                             bool deterministic_only) {
  std::map<KernelKey, const JsonValue*> points;
  for (const JsonValue& run : bench.runs) {
    if (run.has("kernel")) points[KernelKeyFromRun(run)] = &run;
  }
  json->Key("bench_kernel").BeginObject();
  json->Key("sweep").BeginArray();
  for (const auto& [key, run] : points) {
    json->BeginObject();
    json->Key("dataset").String(key.dataset);
    json->Key("kernel").String(key.kernel);
    json->Key("threads").UInt(key.threads);
    json->Key("granularity").UInt((*run)["kernel"]["granularity"].AsUInt());
    // The SCC summary is the determinism witness: every kernel and thread
    // count must land on the same partition.
    if (run->has("result")) {
      json->Key("result");
      WriteJsonValue(json, (*run)["result"]);
    }
    if (!deterministic_only) {
      json->Key("seconds").Double((*run)["seconds"].AsDouble());
    }
    json->EndObject();
  }
  json->EndArray();
  if (!deterministic_only) {
    // Two speedup curves per dataset: self-scaling (parallel_fb at N
    // threads vs its own 1-thread run — the curve CI gates) and the
    // honest cross-kernel ratio vs serial Tarjan.
    json->Key("speedup").BeginArray();
    for (const auto& [key, run] : points) {
      if (key.kernel != "parallel_fb") continue;
      const double seconds = (*run)["seconds"].AsDouble();
      json->BeginObject();
      json->Key("dataset").String(key.dataset);
      json->Key("threads").UInt(key.threads);
      auto self_it = points.find({key.dataset, "parallel_fb", 1});
      if (self_it != points.end()) {
        const double base = (*self_it->second)["seconds"].AsDouble();
        json->Key("speedup").Double(seconds > 0 ? base / seconds : 0.0);
      }
      auto tarjan_it = points.find({key.dataset, "tarjan", 1});
      if (tarjan_it != points.end()) {
        const double base = (*tarjan_it->second)["seconds"].AsDouble();
        json->Key("vs_tarjan").Double(seconds > 0 ? base / seconds : 0.0);
      }
      json->EndObject();
    }
    json->EndArray();
  }
  json->EndObject();
}

void WriteBenchSection(JsonWriter* json, const BenchFile& bench,
                       bool deterministic_only) {
  json->Key(bench.name).BeginObject();
  json->Key("runs").BeginArray();
  for (const JsonValue& original : bench.runs) {
    if (deterministic_only && !original["finished"].AsBool()) {
      // A timed-out run's whole ledger records where the clock cut it
      // off — nothing about it is reproducible. Dropping it here means
      // the comparator (whose scope is baseline-defined) never gates it.
      continue;
    }
    JsonValue run = original;  // canonicalized copy
    run.object.erase("type");
    run.object.erase("experiment");  // redundant with the bench name
    // Per-iteration deltas stay in the JSONL report; the canonical record
    // keeps the summary ledgers (totals + iteration count are gated).
    run.object.erase("per_iteration");
    run.object.erase("per_iteration_total");
    run.object.erase("per_iteration_stride");
    auto ds = run.object.find("dataset");
    if (ds != run.object.end() && ds->second.is_string()) {
      // Scratch directories are per-invocation; basenames are stable.
      ds->second.string_value = Basename(ds->second.string_value);
    }
    if (deterministic_only) StripNondeterministic(&run);
    WriteJsonValue(json, run);
  }
  json->EndArray();
  if (!deterministic_only) WriteHistograms(json, bench);
  // Live-telemetry records are sampled on a wall-clock cadence, so both
  // the timeseries and the watchdog verdicts are machine-dependent:
  // stripped entirely under deterministic_only, summarized otherwise
  // (the full rings stay in the JSONL report).
  if (!deterministic_only && !bench.timeseries.empty()) {
    json->Key("timeseries").BeginArray();
    for (const JsonValue& ts : bench.timeseries) {
      json->BeginObject();
      json->Key("algorithm").String(ts["algorithm"].AsString());
      json->Key("dataset").String(Basename(ts["dataset"].AsString()));
      json->Key("interval_ms").UInt(ts["interval_ms"].AsUInt());
      json->Key("samples").UInt(
          ts["samples"].is_array() ? ts["samples"].array.size() : 0);
      json->EndObject();
    }
    json->EndArray();
  }
  if (!deterministic_only && !bench.watchdogs.empty()) {
    json->Key("watchdog_fires").UInt(bench.watchdogs.size());
  }
  json->EndObject();
}

// ---------------------------------------------------------------------------
// Comparator.

struct CompareContext {
  const BenchCompareOptions* options;
  BenchCompareResult* result;
  bool environments_match = false;

  void Hard(std::string where, std::string message) {
    result->issues.push_back(
        {true, std::move(where) + ": " + std::move(message)});
  }
  void Soft(std::string where, std::string message) {
    result->issues.push_back(
        {false, std::move(where) + ": " + std::move(message)});
  }
};

// Exact comparison of two scalar JSON values (hard gate).
void CompareScalarHard(CompareContext* ctx, const std::string& where,
                       const JsonValue& base, const JsonValue& fresh) {
  ++ctx->result->deterministic_checks;
  if (base.is_number() && fresh.is_number()) {
    if (base.is_uint && fresh.is_uint) {
      if (base.uint_value != fresh.uint_value) {
        ctx->Hard(where, "baseline " + FmtUInt(base.uint_value) + " fresh " +
                             FmtUInt(fresh.uint_value));
      }
    } else if (base.number != fresh.number) {
      ctx->Hard(where, "baseline " + FmtDouble(base.number) + " fresh " +
                           FmtDouble(fresh.number));
    }
    return;
  }
  if (base.is_bool() && fresh.is_bool()) {
    if (base.bool_value != fresh.bool_value) {
      ctx->Hard(where, std::string("baseline ") +
                           (base.bool_value ? "true" : "false") + " fresh " +
                           (fresh.bool_value ? "true" : "false"));
    }
    return;
  }
  if (base.is_string() && fresh.is_string()) {
    if (base.string_value != fresh.string_value) {
      ctx->Hard(where, "baseline \"" + base.string_value + "\" fresh \"" +
                           fresh.string_value + "\"");
    }
    return;
  }
  if (base.type != fresh.type) {
    ctx->Hard(where, "type mismatch (field missing or re-typed)");
  }
}

// Soft tolerance check: fails only when fresh exceeds baseline by more
// than (1 + tolerance) plus the absolute grace. Regressions only — a
// faster fresh run never raises an issue.
void CompareSoft(CompareContext* ctx, const std::string& where, double base,
                 double fresh, double tolerance, double absolute_grace,
                 const char* unit) {
  ++ctx->result->timing_checks;
  const double limit = base * (1.0 + tolerance) + absolute_grace;
  if (fresh > limit) {
    ctx->Soft(where, "baseline " + FmtDouble(base) + unit + " fresh " +
                         FmtDouble(fresh) + unit + " (limit " +
                         FmtDouble(limit) + unit + ")");
  }
}

void CompareIoObjects(CompareContext* ctx, const std::string& where,
                      const JsonValue& base, const JsonValue& fresh) {
  if (!base.is_object()) return;
  for (const auto& [field, base_value] : base.object) {
    const std::string field_where = where + "." + field;
    if (IsLogicalIoField(field)) {
      CompareScalarHard(ctx, field_where, base_value, fresh[field]);
    } else if (IsPhysicalIoField(field)) {
      if (ctx->environments_match) {
        CompareScalarHard(ctx, field_where, base_value, fresh[field]);
      }
    } else if (IsTimingIoField(field)) {
      if (fresh.has(field)) {
        CompareSoft(ctx, field_where, base_value.AsDouble(),
                    fresh[field].AsDouble(), ctx->options->stall_tolerance,
                    1e4, "us");
      }
    }
    // Unknown fields (future schema additions) are not gated.
  }
}

void CompareRuns(CompareContext* ctx, const std::string& where,
                 const JsonValue& base, const JsonValue& fresh) {
  // Deterministic outcome fields, exact.
  for (const char* field :
       {"status", "finished", "timed_out", "iterations"}) {
    if (base.has(field)) {
      CompareScalarHard(ctx, where + "." + field, base[field], fresh[field]);
    }
  }
  // SCC results: any drift is a correctness failure.
  if (base.has("result")) {
    for (const auto& [field, value] : base["result"].object) {
      CompareScalarHard(ctx, where + ".result." + field, value,
                        fresh["result"][field]);
    }
  }
  // Analytic I/O budget: the model, bound, and verdict are deterministic;
  // measured_ios and ratio follow the physical ledger, so they are gated
  // only under a matching environment.
  if (base.has("io_budget")) {
    const JsonValue& bb = base["io_budget"];
    const JsonValue& fb = fresh["io_budget"];
    for (const char* field : {"model", "bound_ios", "pass"}) {
      if (bb.has(field)) {
        CompareScalarHard(ctx, where + ".io_budget." + field, bb[field],
                          fb[field]);
      }
    }
    if (ctx->environments_match) {
      for (const char* field : {"measured_ios", "ratio"}) {
        if (bb.has(field)) {
          CompareScalarHard(ctx, where + ".io_budget." + field, bb[field],
                            fb[field]);
        }
      }
    }
  }
  if (base.has("io")) {
    CompareIoObjects(ctx, where + ".io", base["io"], fresh["io"]);
  }
  // Wall clock, tolerance-gated; skipped when either side omitted it
  // (deterministic_only records carry no timing).
  if (base.has("seconds") && fresh.has("seconds")) {
    CompareSoft(ctx, where + ".seconds", base["seconds"].AsDouble(),
                fresh["seconds"].AsDouble(), ctx->options->time_tolerance,
                0.1, "s");
  }
}

// Sweep benches (bench_io) repeat the same (algorithm, dataset) pair at
// every configuration point, so the run identity includes the cache
// object's threads/depth; runs without one contribute "/t0/d0". Kernel
// sweeps (bench_kernel) vary kernel threads at a fixed dataset, so runs
// carrying a kernel object add "/k<threads>"; runs without one keep the
// old keys byte-for-byte.
std::string RunKey(const JsonValue& run) {
  std::string key = run["algorithm"].AsString() + " @ " +
                    run["dataset"].AsString() + "/t" +
                    FmtUInt(run["cache"]["io_threads"].AsUInt()) + "/d" +
                    FmtUInt(run["cache"]["prefetch_depth"].AsUInt());
  if (run.has("kernel")) {
    key += "/k" + FmtUInt(run["kernel"]["threads"].AsUInt());
  }
  return key;
}

std::string PointKey(const JsonValue& point) {
  return point["workload"].AsString() + "/t" +
         FmtUInt(point["io_threads"].AsUInt()) + "/d" +
         FmtUInt(point["prefetch_depth"].AsUInt());
}

}  // namespace

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    out->append(buf, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::IoError("read " + path);
  return Status::OK();
}

Status AggregateBenchReportFiles(const std::vector<std::string>& jsonl_paths,
                                 const BenchReportOptions& options,
                                 std::string* json_out) {
  std::vector<BenchFile> benches;
  for (const std::string& path : jsonl_paths) {
    BenchFile bench;
    IOSCC_RETURN_IF_ERROR(ParseBenchFile(path, &bench));
    benches.push_back(std::move(bench));
  }
  std::sort(benches.begin(), benches.end(),
            [](const BenchFile& a, const BenchFile& b) {
              return a.name < b.name;
            });

  JsonWriter json;
  json.BeginObject();
  json.Key("schema").String(kBenchReportSchema);
  json.Key("tag").String(options.tag);
  json.Key("deterministic_only").Bool(options.deterministic_only);
  json.Key("environment").BeginObject();
  json.Key("build_type").String(options.build_type);
  json.Key("threads").Int(options.threads);
  json.Key("prefetch_depth").Int(options.prefetch_depth);
  json.Key("cache_blocks").UInt(options.cache_blocks);
  // Build provenance (util/build_info.h). Informational: the comparator's
  // same-environment check stays on the four fields above, so a baseline
  // recorded at another commit still gates the logical ledger.
  json.Key("git_sha").String(BuildGitSha());
  json.Key("compiler").String(BuildCompiler());
  json.Key("cxx_flags").String(BuildCxxFlags());
  json.EndObject();
  json.Key("benches").BeginObject();
  for (const BenchFile& bench : benches) {
    WriteBenchSection(&json, bench, options.deterministic_only);
  }
  json.EndObject();
  for (const BenchFile& bench : benches) {
    if (bench.name == "bench_io") {
      WriteBenchIoSection(&json, bench, options.deterministic_only);
      break;
    }
  }
  for (const BenchFile& bench : benches) {
    if (bench.name == "bench_kernel") {
      WriteBenchKernelSection(&json, bench, options.deterministic_only);
      break;
    }
  }
  json.EndObject();
  *json_out = json.Take();
  json_out->push_back('\n');
  return Status::OK();
}

size_t BenchCompareResult::hard_failures() const {
  size_t n = 0;
  for (const BenchCompareIssue& issue : issues) {
    if (issue.hard) ++n;
  }
  return n;
}

size_t BenchCompareResult::soft_failures() const {
  return issues.size() - hard_failures();
}

std::string BenchCompareResult::Format() const {
  std::string out;
  for (const BenchCompareIssue& issue : issues) {
    out += issue.hard ? "FAIL " : "warn ";
    out += issue.message;
    out += '\n';
  }
  out += "bench_compare: " + std::to_string(deterministic_checks) +
         " deterministic checks, " + std::to_string(timing_checks) +
         " timing checks, " + std::to_string(hard_failures()) +
         " hard failure(s), " + std::to_string(soft_failures()) +
         " warning(s) -> " + (pass() ? "PASS" : "FAIL") + "\n";
  return out;
}

Status CompareBenchReports(const std::string& baseline_json,
                           const std::string& fresh_json,
                           const BenchCompareOptions& options,
                           BenchCompareResult* out) {
  *out = BenchCompareResult();
  JsonValue base, fresh;
  std::string error;
  if (!ParseJson(baseline_json, &base, &error)) {
    return Status::Corruption("baseline: " + error);
  }
  if (!ParseJson(fresh_json, &fresh, &error)) {
    return Status::Corruption("fresh: " + error);
  }
  CompareContext ctx;
  ctx.options = &options;
  ctx.result = out;

  if (base["schema"].AsString() != kBenchReportSchema) {
    ctx.Hard("schema", "baseline is not " + std::string(kBenchReportSchema));
    return Status::OK();
  }
  if (fresh["schema"].AsString() != kBenchReportSchema) {
    ctx.Hard("schema", "fresh is not " + std::string(kBenchReportSchema));
    return Status::OK();
  }

  const JsonValue& base_env = base["environment"];
  const JsonValue& fresh_env = fresh["environment"];
  ctx.environments_match = true;
  for (const char* field :
       {"threads", "prefetch_depth", "cache_blocks", "build_type"}) {
    const JsonValue& a = base_env[field];
    const JsonValue& b = fresh_env[field];
    const bool equal =
        (a.is_number() && b.is_number() && a.number == b.number) ||
        (a.is_string() && b.is_string() && a.string_value == b.string_value);
    if (!equal) ctx.environments_match = false;
  }

  // The baseline defines the gate scope: iterate its benches/runs and
  // require each in the fresh record. Extra fresh entries are ignored.
  for (const auto& [bench_name, base_bench] : base["benches"].object) {
    if (!fresh["benches"].has(bench_name)) {
      ctx.Hard(bench_name, "bench missing from fresh report");
      continue;
    }
    const JsonValue& fresh_bench = fresh["benches"][bench_name];
    // Index fresh runs by key; last record per key wins, matching the
    // aggregator's sweep handling.
    std::map<std::string, const JsonValue*> fresh_runs;
    if (fresh_bench["runs"].is_array()) {
      for (const JsonValue& run : fresh_bench["runs"].array) {
        fresh_runs[RunKey(run)] = &run;
      }
    }
    if (base_bench["runs"].is_array()) {
      for (const JsonValue& run : base_bench["runs"].array) {
        const std::string key = RunKey(run);
        const std::string where = bench_name + ": " + key;
        auto it = fresh_runs.find(key);
        if (it == fresh_runs.end()) {
          ctx.Hard(where, "run missing from fresh report");
          continue;
        }
        CompareRuns(&ctx, where, run, *it->second);
      }
    }
  }

  // bench_kernel sweep: every baseline point must exist and land on the
  // identical SCC summary — the cross-kernel/cross-thread determinism
  // gate. Speedup curves are machine-dependent and not gated here (the CI
  // workflow asserts the 4-thread scaling separately).
  if (base.has("bench_kernel")) {
    if (!fresh.has("bench_kernel")) {
      ctx.Hard("bench_kernel", "sweep missing from fresh report");
    } else {
      auto kernel_point_key = [](const JsonValue& point) {
        return point["dataset"].AsString() + "/" +
               point["kernel"].AsString() + "/k" +
               FmtUInt(point["threads"].AsUInt());
      };
      std::map<std::string, const JsonValue*> fresh_points;
      for (const JsonValue& point : fresh["bench_kernel"]["sweep"].array) {
        fresh_points[kernel_point_key(point)] = &point;
      }
      for (const JsonValue& point : base["bench_kernel"]["sweep"].array) {
        const std::string key = kernel_point_key(point);
        const std::string where = "bench_kernel: " + key;
        auto it = fresh_points.find(key);
        if (it == fresh_points.end()) {
          ctx.Hard(where, "sweep point missing from fresh report");
          continue;
        }
        if (point.has("result")) {
          for (const auto& [field, value] : point["result"].object) {
            CompareScalarHard(&ctx, where + ".result." + field, value,
                              (*it->second)["result"][field]);
          }
        }
        if (point.has("seconds") && it->second->has("seconds")) {
          CompareSoft(&ctx, where + ".seconds", point["seconds"].AsDouble(),
                      (*it->second)["seconds"].AsDouble(),
                      options.time_tolerance, 0.1, "s");
        }
      }
    }
  }

  // bench_io sweep: every baseline point must exist with the same logical
  // ledger; stalls are soft.
  if (base.has("bench_io")) {
    if (!fresh.has("bench_io")) {
      ctx.Hard("bench_io", "sweep missing from fresh report");
    } else {
      std::map<std::string, const JsonValue*> fresh_points;
      for (const JsonValue& point : fresh["bench_io"]["sweep"].array) {
        fresh_points[PointKey(point)] = &point;
      }
      for (const JsonValue& point : base["bench_io"]["sweep"].array) {
        const std::string key = PointKey(point);
        const std::string where = "bench_io: " + key;
        auto it = fresh_points.find(key);
        if (it == fresh_points.end()) {
          ctx.Hard(where, "sweep point missing from fresh report");
          continue;
        }
        CompareIoObjects(&ctx, where + ".io", point["io"],
                         (*it->second)["io"]);
        if (point.has("seconds") && it->second->has("seconds")) {
          CompareSoft(&ctx, where + ".seconds", point["seconds"].AsDouble(),
                      (*it->second)["seconds"].AsDouble(),
                      options.time_tolerance, 0.1, "s");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace ioscc
