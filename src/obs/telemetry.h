// Live telemetry: a background time-series sampler, a budget-anchored
// progress estimator, a TTY status renderer, and a stall watchdog.
//
// Everything the obs spine produced before this file is post-hoc — a
// billion-edge run is a black box until it exits. The Telemetry engine
// watches a run *while it happens*, from a dedicated sampler thread, using
// nothing but relaxed-atomic observations:
//
//   * the process-wide I/O rate counters (io/io_counters.h), mirrors of
//     the per-run ledgers bumped at the same block_file.cc sites;
//   * three driver gauges (iteration, live_nodes, live_edges) that every
//     scc/ driver publishes via TelemetryOnIteration at each pass
//     boundary;
//   * process RSS via getrusage and the I/O pool's queue depth.
//
// The sampler never touches an IoStats ledger, the audit log, or any
// algorithm state, so the logical ledger, the audit stream, and the SCC
// results are byte-identical whether telemetry is installed or not —
// tests/telemetry_test.cc pins this at every threads x depth x cache
// setting and CI gates it.
//
// Progress and ETA are *budget-anchored*, not wall-clock extrapolation:
// the harness hands BeginRun the running driver's linear analytic cost
// model (harness/io_budget.h TelemetryCostModel) and the estimator
// divides cumulative logical blocks by that bound. The anchor grows
// monotonically if the run outlives the anticipated iteration count, so
// progress never runs backwards past 100%.
//
// Install with SetTelemetry() before opening files / starting runs —
// the same capture-at-open contract as SetBlockCache/SetPhaseProfiler.
// With none installed, the only cost anywhere is a relaxed atomic load.

#ifndef IOSCC_OBS_TELEMETRY_H_
#define IOSCC_OBS_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/io_counters.h"

namespace ioscc {

struct TelemetryOptions {
  // Sampler cadence. 0 disables the background thread entirely: samples
  // are then taken only by explicit SampleNow() calls (tests use this for
  // deterministic single-step control).
  uint64_t sample_interval_ms = 200;

  // Bounded ring of retained samples; older samples are dropped. The
  // {"type":"timeseries"} record carries at most this many entries no
  // matter how long the run was.
  size_t ring_capacity = 512;

  // Stall watchdog: fires once per run when logical I/O and the driver
  // iteration gauge have both stopped advancing for this long. 0 disables
  // the watchdog.
  uint64_t watchdog_window_ms = 0;

  // Ring-buffer tail included in the watchdog's diagnostic snapshot.
  size_t watchdog_tail_samples = 16;

  // Live status line on stderr (phase, iteration, contraction %, MB/s,
  // cache hit %, ETA), refreshed by the sampler.
  bool render_status = false;

  // Non-TTY stderr falls back to newline-delimited updates at most once
  // per this interval (so CI logs and `2>file` captures stay readable).
  uint64_t render_throttle_ms = 1000;

  // Tests only: force the \r-rewrite TTY path / the newline path without
  // a real terminal.
  bool assume_tty = false;
  bool assume_not_tty = false;
};

// What the harness knows about the run it is starting: identity, size,
// and the driver's linear analytic cost model bound = fixed_blocks +
// blocks_per_iteration * iterations (harness/io_budget.h derives these
// from the same formulas CheckIoBudget enforces post-hoc).
struct TelemetryRunInfo {
  std::string algorithm;
  std::string dataset;
  uint64_t total_nodes = 0;
  uint64_t total_edges = 0;
  uint64_t fixed_blocks = 0;
  uint64_t blocks_per_iteration = 0;
  // Iterations the estimator anchors on until the run proves it wrong;
  // the anchor is max(anticipated, current iteration + 1).
  uint64_t anticipated_iterations = 0;
};

// One point of the time series. All counter fields are cumulative
// process-wide values at sample time; consumers take deltas.
struct TelemetrySample {
  uint64_t elapsed_micros = 0;  // since the engine was constructed
  // I/O rate counters (io/io_counters.h).
  uint64_t logical_blocks = 0;  // read + written
  uint64_t logical_bytes = 0;
  uint64_t physical_blocks_read = 0;
  uint64_t cache_hits = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetched_blocks = 0;
  uint64_t read_stall_micros = 0;
  uint64_t prefetch_depth = 0;
  // Snapshots published so far (harness/checkpoint.cc bumps the counter);
  // a step in this series marks a checkpoint between two samples.
  uint64_t checkpoints = 0;
  uint64_t pool_queue_depth = 0;
  uint64_t max_rss_kb = 0;
  // Driver gauges (TelemetryOnIteration / TelemetryOnKernelBatch).
  uint64_t iteration = 0;
  uint64_t live_nodes = 0;
  uint64_t live_edges = 0;
  // In-memory batch-kernel heartbeat: batches solved this run. Advancing
  // counts as progress for the watchdog even while logical I/O and the
  // pass gauge are frozen (1PB-SCC's in-memory phase).
  uint64_t kernel_batches = 0;
  // Finer-grained kernel liveness: ticks per trim/BFS level and per
  // solved subproblem *inside* a batch, plus once per completed batch.
  // The watchdog's progress witness for batches that outlast the stall
  // window on their own. Not serialized into the timeseries record.
  uint64_t kernel_heartbeats = 0;
  // Budget-anchored estimator; negative when no run/model is active.
  double progress = -1;     // 0..1
  double eta_seconds = -1;  // elapsed * (1 - p) / p
};

class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options = TelemetryOptions());
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Brackets one algorithm execution. BeginRun resets the gauges, the
  // estimator anchor, and the per-run watchdog state; EndRun freezes the
  // estimator and finishes the status line (newline on a TTY).
  void BeginRun(const TelemetryRunInfo& info);
  void EndRun();
  bool run_active() const {
    return run_active_.load(std::memory_order_relaxed);
  }

  // Driver gauge update; called from the algorithm thread at every pass
  // boundary. Relaxed stores only — safe and cheap from any thread.
  void OnIteration(uint64_t iteration, uint64_t live_nodes,
                   uint64_t live_edges) {
    iteration_.store(iteration, std::memory_order_relaxed);
    live_nodes_.store(live_nodes, std::memory_order_relaxed);
    live_edges_.store(live_edges, std::memory_order_relaxed);
  }

  // Batch-kernel heartbeat: called by 1PB-SCC after every in-memory batch
  // so the live gauges keep moving (and the watchdog keeps quiet) during
  // long I/O-free stretches mid-pass.
  void OnKernelBatch(uint64_t batches, uint64_t live_nodes,
                     uint64_t live_edges) {
    kernel_batches_.store(batches, std::memory_order_relaxed);
    live_nodes_.store(live_nodes, std::memory_order_relaxed);
    live_edges_.store(live_edges, std::memory_order_relaxed);
    kernel_heartbeats_.fetch_add(1, std::memory_order_relaxed);
  }

  // Mid-batch kernel liveness tick (per trim/BFS level, per solved
  // subproblem). Keeps the watchdog quiet through a single batch that
  // takes longer than the stall window; updates no user-visible gauge.
  void OnKernelProgress() {
    kernel_heartbeats_.fetch_add(1, std::memory_order_relaxed);
  }

  // Takes one sample synchronously (the sampler thread calls this at the
  // configured cadence; tests drive it by hand): snapshots the counters
  // and gauges, runs the estimator and the watchdog, pushes into the
  // ring, and renders the status line when enabled.
  TelemetrySample SampleNow();

  // Copy of the retained ring, oldest first.
  std::vector<TelemetrySample> RingSnapshot() const;

  // {"type":"timeseries",...} JSONL record with the retained samples.
  std::string TimeseriesToJson() const;

  // Number of times the watchdog fired since construction, and the last
  // diagnostic record ({"type":"watchdog",...}; empty if never fired).
  uint64_t watchdog_fires() const {
    return watchdog_fires_.load(std::memory_order_relaxed);
  }
  std::string WatchdogReportJson() const;

  const TelemetryOptions& options() const { return options_; }

 private:
  void SamplerLoop();
  void CheckWatchdog(const TelemetrySample& sample, uint64_t interval_micros);
  void FireWatchdog(const TelemetrySample& sample, uint64_t stalled_ms);
  void RenderStatus(const TelemetrySample& sample);
  uint64_t NowMicros() const;

  const TelemetryOptions options_;

  // Driver gauges + run bracket, written by other threads.
  std::atomic<uint64_t> iteration_{0};
  std::atomic<uint64_t> live_nodes_{0};
  std::atomic<uint64_t> live_edges_{0};
  std::atomic<uint64_t> kernel_batches_{0};
  std::atomic<uint64_t> kernel_heartbeats_{0};
  std::atomic<bool> run_active_{false};
  std::atomic<uint64_t> watchdog_fires_{0};

  // Everything below mu_: run info, ring, watchdog + renderer state.
  mutable std::mutex mu_;
  TelemetryRunInfo run_info_;
  uint64_t run_start_micros_ = 0;
  uint64_t run_start_logical_blocks_ = 0;
  std::deque<TelemetrySample> ring_;
  // Watchdog progress tracking (sampler thread only, but kept under mu_
  // for SampleNow calls from tests).
  uint64_t wd_last_logical_ = 0;
  uint64_t wd_last_iteration_ = 0;
  uint64_t wd_last_kernel_batches_ = 0;
  uint64_t wd_last_kernel_heartbeats_ = 0;
  uint64_t wd_stalled_micros_ = 0;
  bool wd_fired_this_run_ = false;
  std::string watchdog_report_;
  // Renderer state.
  bool stderr_is_tty_ = false;
  uint64_t last_render_micros_ = 0;
  uint64_t last_render_logical_bytes_ = 0;
  bool rendered_line_open_ = false;

  // Sampler thread lifecycle.
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;
  bool stop_ = false;
  std::thread sampler_;
  const std::chrono::steady_clock::time_point epoch_;
};

namespace internal_obs {
inline std::atomic<Telemetry*> g_telemetry{nullptr};
}  // namespace internal_obs

// Installs `telemetry` as the process-wide engine (nullptr uninstalls).
// Same contract as the other seams: install before starting runs,
// uninstall (then destroy) after they finish — the engine must outlive
// every run bracketed while installed.
inline void SetTelemetry(Telemetry* telemetry) {
  internal_obs::g_telemetry.store(telemetry, std::memory_order_release);
}

inline Telemetry* GetTelemetry() {
  return internal_obs::g_telemetry.load(std::memory_order_relaxed);
}

// Driver-side gauge hook: one relaxed load when no engine is installed.
inline void TelemetryOnIteration(uint64_t iteration, uint64_t live_nodes,
                                 uint64_t live_edges) {
  Telemetry* t = GetTelemetry();
  if (t != nullptr) t->OnIteration(iteration, live_nodes, live_edges);
}

// Batch-kernel heartbeat hook, same cost contract as above.
inline void TelemetryOnKernelBatch(uint64_t batches, uint64_t live_nodes,
                                   uint64_t live_edges) {
  Telemetry* t = GetTelemetry();
  if (t != nullptr) t->OnKernelBatch(batches, live_nodes, live_edges);
}

// Mid-batch kernel liveness hook (wired into ParallelSccOptions::heartbeat
// by 1PB-SCC); same cost contract as above.
inline void TelemetryOnKernelProgress() {
  Telemetry* t = GetTelemetry();
  if (t != nullptr) t->OnKernelProgress();
}

}  // namespace ioscc

#endif  // IOSCC_OBS_TELEMETRY_H_
