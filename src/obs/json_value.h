// Parsed JSON document model for the observability consumers (the
// bench_report aggregator and bench_compare comparator read back the
// JSONL run reports and canonical BENCH_*.json files this repo writes).
//
// Strict JSON only, no comments. Numbers are kept as doubles *and*, when
// the literal is a plain non-negative integer, as an exact uint64 — the
// comparator gates on logical block counts, which must round-trip
// exactly. This is the production sibling of tests/json_test_util.h.

#ifndef IOSCC_OBS_JSON_VALUE_H_
#define IOSCC_OBS_JSON_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ioscc {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  // Exact value when the literal was a plain non-negative integer that
  // fits uint64 (is_uint); `number` is always populated.
  uint64_t uint_value = 0;
  bool is_uint = false;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  bool has(const std::string& key) const {
    return is_object() && object.count(key) != 0;
  }

  // Object member access; returns a shared null value when absent so
  // lookups chain without crashing (callers then check the type).
  const JsonValue& operator[](const std::string& key) const;

  // Typed accessors with defaults for absent/mistyped values.
  uint64_t AsUInt(uint64_t default_value = 0) const;
  double AsDouble(double default_value = 0.0) const;
  bool AsBool(bool default_value = false) const;
  const std::string& AsString() const;  // empty when not a string
};

// Parses exactly one JSON document (no trailing garbage). On failure
// returns false and, when `error` is non-null, a byte-offset message.
bool ParseJson(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace ioscc

#endif  // IOSCC_OBS_JSON_VALUE_H_
