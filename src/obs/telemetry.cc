#include "obs/telemetry.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstddef>
#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/run_report.h"
#include "util/thread_pool.h"

namespace ioscc {
namespace {

void WriteSample(JsonWriter* json, const TelemetrySample& s) {
  json->BeginObject();
  json->Key("elapsed_micros").UInt(s.elapsed_micros);
  json->Key("logical_blocks").UInt(s.logical_blocks);
  json->Key("logical_bytes").UInt(s.logical_bytes);
  json->Key("physical_blocks_read").UInt(s.physical_blocks_read);
  json->Key("cache_hits").UInt(s.cache_hits);
  json->Key("prefetch_hits").UInt(s.prefetch_hits);
  json->Key("prefetched_blocks").UInt(s.prefetched_blocks);
  json->Key("read_stall_micros").UInt(s.read_stall_micros);
  json->Key("prefetch_depth").UInt(s.prefetch_depth);
  json->Key("checkpoints").UInt(s.checkpoints);
  json->Key("pool_queue_depth").UInt(s.pool_queue_depth);
  json->Key("max_rss_kb").UInt(s.max_rss_kb);
  json->Key("iteration").UInt(s.iteration);
  json->Key("live_nodes").UInt(s.live_nodes);
  json->Key("live_edges").UInt(s.live_edges);
  json->Key("kernel_batches").UInt(s.kernel_batches);
  json->Key("progress").Double(s.progress);
  json->Key("eta_seconds").Double(s.eta_seconds);
  json->EndObject();
}

std::string SamplesToJsonArray(const std::vector<TelemetrySample>& samples) {
  JsonWriter json;
  json.BeginArray();
  for (const TelemetrySample& s : samples) WriteSample(&json, s);
  json.EndArray();
  return json.Take();
}

// "12.3 MB/s" / "972 kB/s" — rate over the render interval.
std::string FormatRate(uint64_t bytes, uint64_t micros) {
  if (micros == 0) return "-";
  const double mbps = static_cast<double>(bytes) / micros;  // bytes/us == MB/s
  char buf[32];
  if (mbps >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f MB/s", mbps);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f kB/s", mbps * 1000.0);
  }
  return buf;
}

std::string FormatEta(double seconds) {
  if (seconds < 0) return "-";
  char buf[32];
  if (seconds >= 3600) {
    std::snprintf(buf, sizeof buf, "%.1fh", seconds / 3600.0);
  } else if (seconds >= 60) {
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  }
  return buf;
}

}  // namespace

Telemetry::Telemetry(const TelemetryOptions& options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  if (options_.assume_tty) {
    stderr_is_tty_ = true;
  } else if (options_.assume_not_tty) {
    stderr_is_tty_ = false;
  } else {
    stderr_is_tty_ = ::isatty(::fileno(stderr)) != 0;
  }
  if (options_.sample_interval_ms > 0) {
    sampler_ = std::thread([this] { SamplerLoop(); });
  }
}

Telemetry::~Telemetry() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  // Never leave a half-drawn \r line under the next shell prompt.
  std::lock_guard<std::mutex> lock(mu_);
  if (rendered_line_open_) {
    std::fputc('\n', stderr);
    rendered_line_open_ = false;
  }
}

uint64_t Telemetry::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Telemetry::SamplerLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  for (;;) {
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.sample_interval_ms),
                      [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void Telemetry::BeginRun(const TelemetryRunInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  run_info_ = info;
  run_start_micros_ = NowMicros();
  run_start_logical_blocks_ = SnapshotIoCounters().TotalLogicalBlocks();
  wd_last_logical_ = run_start_logical_blocks_;
  wd_last_iteration_ = 0;
  wd_last_kernel_batches_ = 0;
  wd_last_kernel_heartbeats_ = 0;
  wd_stalled_micros_ = 0;
  wd_fired_this_run_ = false;
  iteration_.store(0, std::memory_order_relaxed);
  kernel_batches_.store(0, std::memory_order_relaxed);
  kernel_heartbeats_.store(0, std::memory_order_relaxed);
  live_nodes_.store(info.total_nodes, std::memory_order_relaxed);
  live_edges_.store(info.total_edges, std::memory_order_relaxed);
  run_active_.store(true, std::memory_order_release);
}

void Telemetry::EndRun() {
  run_active_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  if (rendered_line_open_) {
    std::fputc('\n', stderr);
    rendered_line_open_ = false;
  }
}

TelemetrySample Telemetry::SampleNow() {
  TelemetrySample s;
  s.elapsed_micros = NowMicros();
  const IoCountersSnapshot io = SnapshotIoCounters();
  s.logical_blocks = io.TotalLogicalBlocks();
  s.logical_bytes = io.TotalLogicalBytes();
  s.physical_blocks_read = io.physical_blocks_read;
  s.cache_hits = io.cache_hits;
  s.prefetch_hits = io.prefetch_hits;
  s.prefetched_blocks = io.prefetched_blocks;
  s.read_stall_micros = io.read_stall_micros;
  s.prefetch_depth = io.prefetch_depth_used;
  s.checkpoints = io.checkpoints;
  if (ThreadPool* pool = GetIoThreadPool()) {
    s.pool_queue_depth = pool->queue_depth();
  }
  s.max_rss_kb = SampleResourceUsage().max_rss_kb;
  s.iteration = iteration_.load(std::memory_order_relaxed);
  s.live_nodes = live_nodes_.load(std::memory_order_relaxed);
  s.live_edges = live_edges_.load(std::memory_order_relaxed);
  s.kernel_batches = kernel_batches_.load(std::memory_order_relaxed);
  s.kernel_heartbeats = kernel_heartbeats_.load(std::memory_order_relaxed);

  uint64_t interval_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ring_.empty()) {
      const uint64_t prev = ring_.back().elapsed_micros;
      interval_micros = s.elapsed_micros > prev ? s.elapsed_micros - prev : 0;
    }
    if (run_active_.load(std::memory_order_acquire)) {
      const uint64_t per_iter = run_info_.blocks_per_iteration;
      if (per_iter > 0 || run_info_.fixed_blocks > 0) {
        // Budget anchor: the analytic bound at max(anticipated, current+1)
        // iterations. Grows monotonically when the run outlives the
        // anticipated count, so progress never overshoots backwards.
        const uint64_t anchor_iters =
            std::max<uint64_t>(run_info_.anticipated_iterations,
                               s.iteration + 1);
        const uint64_t bound =
            run_info_.fixed_blocks + per_iter * anchor_iters;
        const uint64_t measured =
            s.logical_blocks > run_start_logical_blocks_
                ? s.logical_blocks - run_start_logical_blocks_
                : 0;
        if (bound > 0) {
          s.progress = std::min(
              1.0, static_cast<double>(measured) / static_cast<double>(bound));
          const double run_elapsed =
              (s.elapsed_micros > run_start_micros_
                   ? s.elapsed_micros - run_start_micros_
                   : 0) *
              1e-6;
          if (s.progress > 1e-9) {
            s.eta_seconds = run_elapsed * (1.0 - s.progress) / s.progress;
          }
        }
      }
    }
    ring_.push_back(s);
    while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  }
  if (options_.watchdog_window_ms > 0) CheckWatchdog(s, interval_micros);
  if (options_.render_status) RenderStatus(s);
  return s;
}

void Telemetry::CheckWatchdog(const TelemetrySample& sample,
                              uint64_t interval_micros) {
  if (!run_active_.load(std::memory_order_acquire)) return;
  uint64_t stalled_ms = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sample.logical_blocks == wd_last_logical_ &&
        sample.iteration == wd_last_iteration_ &&
        sample.kernel_batches == wd_last_kernel_batches_ &&
        sample.kernel_heartbeats == wd_last_kernel_heartbeats_) {
      wd_stalled_micros_ += interval_micros;
    } else {
      wd_last_logical_ = sample.logical_blocks;
      wd_last_iteration_ = sample.iteration;
      wd_last_kernel_batches_ = sample.kernel_batches;
      wd_last_kernel_heartbeats_ = sample.kernel_heartbeats;
      wd_stalled_micros_ = 0;
    }
    stalled_ms = wd_stalled_micros_ / 1000;
    if (stalled_ms >= options_.watchdog_window_ms && !wd_fired_this_run_) {
      wd_fired_this_run_ = true;
      fire = true;
    }
  }
  if (fire) FireWatchdog(sample, stalled_ms);
}

void Telemetry::FireWatchdog(const TelemetrySample& sample,
                             uint64_t stalled_ms) {
  watchdog_fires_.fetch_add(1, std::memory_order_relaxed);

  // One-shot diagnostic: metrics registry + per-span phase profile + the
  // ring tail, assembled into a single {"type":"watchdog"} record. The
  // metrics/phases sub-objects reuse the standalone record serializers
  // (they are complete JSON objects, legal as embedded values).
  std::vector<TelemetrySample> tail;
  std::string algorithm, dataset;
  {
    std::lock_guard<std::mutex> lock(mu_);
    algorithm = run_info_.algorithm;
    dataset = run_info_.dataset;
    const size_t n = std::min(options_.watchdog_tail_samples, ring_.size());
    tail.assign(ring_.end() - static_cast<ptrdiff_t>(n), ring_.end());
  }
  std::string metrics_json =
      MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot());
  std::string phases_json;
  if (PhaseProfiler* profiler = GetPhaseProfiler()) {
    phases_json = PhaseProfilesToJson(profiler->Snapshot());
  } else {
    phases_json = "{\"type\":\"phases\",\"profiles\":[]}";
  }

  JsonWriter head;
  head.BeginObject();
  head.Key("type").String("watchdog");
  head.Key("algorithm").String(algorithm);
  head.Key("dataset").String(dataset);
  head.Key("stalled_ms").UInt(stalled_ms);
  head.Key("iteration").UInt(sample.iteration);
  head.Key("logical_blocks").UInt(sample.logical_blocks);
  head.EndObject();
  std::string record = head.Take();
  record.pop_back();  // reopen the object to splice the sub-records in
  record += ",\"metrics\":" + metrics_json;
  record += ",\"phases\":" + phases_json;
  record += ",\"samples\":" + SamplesToJsonArray(tail);
  record += "}";

  {
    std::lock_guard<std::mutex> lock(mu_);
    watchdog_report_ = record;
    if (rendered_line_open_) {
      std::fputc('\n', stderr);
      rendered_line_open_ = false;
    }
  }
  std::fprintf(stderr,
               "[telemetry] watchdog: %s on %s stalled for %" PRIu64
               " ms (iteration %" PRIu64 ", %" PRIu64
               " logical blocks); diagnostic snapshot follows\n%s\n",
               algorithm.c_str(), dataset.c_str(), stalled_ms,
               sample.iteration, sample.logical_blocks, record.c_str());
  std::fflush(stderr);
}

std::string Telemetry::WatchdogReportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watchdog_report_;
}

void Telemetry::RenderStatus(const TelemetrySample& sample) {
  if (!run_active_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t since_render = sample.elapsed_micros > last_render_micros_
                                    ? sample.elapsed_micros - last_render_micros_
                                    : 0;
  if (!stderr_is_tty_ &&
      last_render_micros_ != 0 &&
      since_render < options_.render_throttle_ms * 1000) {
    return;
  }
  const uint64_t bytes_delta =
      sample.logical_bytes > last_render_logical_bytes_
          ? sample.logical_bytes - last_render_logical_bytes_
          : 0;
  const uint64_t lookups = sample.cache_hits + sample.physical_blocks_read;
  const double hit_pct =
      lookups > 0 ? 100.0 * sample.cache_hits / lookups : 0.0;
  const double contraction_pct =
      run_info_.total_nodes > 0 && sample.live_nodes <= run_info_.total_nodes
          ? 100.0 * (run_info_.total_nodes - sample.live_nodes) /
                run_info_.total_nodes
          : 0.0;
  // Mid-pass the in-memory kernel is the only thing moving; surface its
  // batch counter so the line visibly advances between pass boundaries.
  char batches[32] = "";
  if (sample.kernel_batches > 0) {
    std::snprintf(batches, sizeof batches, " batch %" PRIu64,
                  sample.kernel_batches);
  }
  char line[288];
  std::snprintf(
      line, sizeof line,
      "[%s] iter %" PRIu64 "%s | live %" PRIu64 "n/%" PRIu64
      "e | contracted %.1f%% | %s | cache %.0f%% | %s%.0f%% eta %s",
      run_info_.algorithm.c_str(), sample.iteration, batches,
      sample.live_nodes, sample.live_edges, contraction_pct,
      FormatRate(bytes_delta, since_render).c_str(), hit_pct,
      sample.progress >= 0 ? "" : "~", 100.0 * std::max(0.0, sample.progress),
      FormatEta(sample.eta_seconds).c_str());
  if (stderr_is_tty_) {
    std::fprintf(stderr, "\r\x1b[K%s", line);
    rendered_line_open_ = true;
  } else {
    std::fprintf(stderr, "%s\n", line);
  }
  std::fflush(stderr);
  last_render_micros_ = sample.elapsed_micros;
  last_render_logical_bytes_ = sample.logical_bytes;
}

std::vector<TelemetrySample> Telemetry::RingSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TelemetrySample>(ring_.begin(), ring_.end());
}

std::string Telemetry::TimeseriesToJson() const {
  std::vector<TelemetrySample> samples = RingSnapshot();
  std::string algorithm, dataset;
  {
    std::lock_guard<std::mutex> lock(mu_);
    algorithm = run_info_.algorithm;
    dataset = run_info_.dataset;
  }
  JsonWriter head;
  head.BeginObject();
  head.Key("type").String("timeseries");
  head.Key("algorithm").String(algorithm);
  head.Key("dataset").String(dataset);
  head.Key("interval_ms").UInt(options_.sample_interval_ms);
  head.Key("sample_count").UInt(samples.size());
  head.EndObject();
  std::string record = head.Take();
  record.pop_back();
  record += ",\"samples\":" + SamplesToJsonArray(samples);
  record += "}";
  return record;
}

}  // namespace ioscc
