// Regenerates Table 1 and the §7.4 narrative: per-iteration node/edge
// reduction of 1PB-SCC on the WEBSPAM-UK2007 stand-in, plus the iteration
// count with and without early acceptance / early rejection.
//
// Paper reference points (at 105.9M nodes): 21 iterations with EA+ER,
// >50 without; 8.61%/3.02% nodes/edges reduced in iteration 1; >99% of
// edges pruned over the run.

#include "bench/bench_common.h"

namespace ioscc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchContext ctx;
  ctx.scale = 0.002;  // 420K nodes by default
  Flags flags;
  if (!InitBench(argc, argv, &ctx, &flags)) return 1;
  const uint64_t nodes = static_cast<uint64_t>(ctx.scale * 105'895'908.0);
  const double degree = flags.GetDouble("degree", 35.0);

  std::string path;
  Status st = ctx.datasets->WebspamSim(nodes, degree, ctx.seed, &path);
  if (!st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("== Table 1: nodes/edges reduced per iteration "
              "(webspam-sim) ==\n");
  PrintDatasetLine("dataset", path);
  DatasetStats ds;
  (void)DatasetBuilder::Describe(path, &ds);

  // With early acceptance + early rejection (paper defaults: tau = 0.5%,
  // rejection every 5 iterations).
  SemiExternalOptions with = ctx.Options(ds.node_count);
  RunOutcome with_opt = Run(ctx, SccAlgorithm::kOnePhaseBatch, path, with);

  Table table({"Iteration", "# Nodes Reduced", "# Edges Reduced",
               "% Nodes", "% Edges"});
  const auto& iters = with_opt.stats.per_iteration;
  for (size_t i = 0; i < iters.size() && i < 5; ++i) {
    table.AddRow({std::to_string(i + 1),
                  FormatCompact(iters[i].nodes_reduced),
                  FormatCompact(iters[i].edges_reduced),
                  FormatPercent(static_cast<double>(iters[i].nodes_reduced) /
                                ds.node_count),
                  FormatPercent(static_cast<double>(iters[i].edges_reduced) /
                                ds.edge_count)});
  }
  table.Print();

  uint64_t pruned_edges = 0;
  uint64_t final_edges = ds.edge_count;
  for (const auto& it : iters) {
    pruned_edges += it.edges_reduced;
    final_edges = it.live_edges;
  }
  std::printf("\niterations with EA+ER: %llu\n",
              static_cast<unsigned long long>(with_opt.stats.iterations));
  std::printf("edges pruned over the run: %s of %s (%s)\n",
              FormatCount(pruned_edges).c_str(),
              FormatCount(ds.edge_count).c_str(),
              FormatPercent(static_cast<double>(pruned_edges) /
                            ds.edge_count)
                  .c_str());
  std::printf("edge stream after last rewrite: %s edges\n",
              FormatCount(final_edges).c_str());
  std::printf("nodes pruned by early acceptance: %s, by early rejection: "
              "%s\n",
              FormatCount(with_opt.stats.nodes_accepted).c_str(),
              FormatCount(with_opt.stats.nodes_rejected).c_str());

  // Without the optimizations: tau disabled, rejection disabled.
  SemiExternalOptions without = ctx.Options(ds.node_count);
  without.tau_fraction = -1.0;
  without.reject_interval = 0;
  RunOutcome without_opt =
      Run(ctx, SccAlgorithm::kOnePhaseBatch, path, without);
  std::printf("\niterations without EA+ER: %s (paper: >50 vs 21 with)\n",
              without_opt.Finished()
                  ? FormatCount(without_opt.stats.iterations).c_str()
                  : "INF");
  std::printf("I/Os with EA+ER: %s, without: %s\n",
              IoCell(with_opt).c_str(), IoCell(without_opt).c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
