// Regenerates Fig. 13: WEBSPAM-UK2007 stand-in, varying the internal
// memory budget (the paper sweeps 1 GB to 3 GB at fixed graph size);
// (a) time, (b) # of I/Os.
//
// Shape to reproduce: only 1PB-SCC exploits the extra memory (bigger
// batches, fewer iterations -> fewer I/Os); DFS/2P/1P do not benefit and
// in the paper cannot finish the full graph at any memory size.

#include "bench/bench_common.h"

namespace ioscc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchContext ctx;
  ctx.scale = 0.002;
  ctx.time_limit = 30.0;
  Flags flags;
  if (!InitBench(argc, argv, &ctx, &flags)) return 1;
  const uint64_t nodes = static_cast<uint64_t>(ctx.scale * 105'895'908.0);
  const double degree = flags.GetDouble("degree", 35.0);

  std::string path;
  Status st = ctx.datasets->WebspamSim(nodes, degree, ctx.seed, &path);
  if (!st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("== Fig. 13: webspam-sim, varying memory ==\n");
  PrintDatasetLine("dataset", path);
  DatasetStats ds;
  (void)DatasetBuilder::Describe(path, &ds);

  const std::vector<SccAlgorithm> algorithms = {
      SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
      SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs};
  std::vector<std::string> headers = {"memory"};
  for (SccAlgorithm a : algorithms) headers.push_back(AlgorithmName(a));
  Table time_table(headers);
  Table io_table(headers);

  const uint64_t base =
      PaperDefaultMemoryBytes(ds.node_count, kDefaultBlockSize);
  for (double mult : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    SemiExternalOptions options = ctx.Options(ds.node_count);
    options.memory_budget_bytes = static_cast<uint64_t>(base * mult);
    std::vector<std::string> time_row = {FormatCompact(
        options.memory_budget_bytes)};
    std::vector<std::string> io_row = time_row;
    for (SccAlgorithm algorithm : algorithms) {
      RunOutcome outcome = Run(ctx, algorithm, path, options);
      time_row.push_back(TimeCell(outcome));
      io_row.push_back(IoCell(outcome));
    }
    time_table.AddRow(time_row);
    io_table.AddRow(io_row);
  }
  std::printf("\n(a) processing time\n");
  time_table.Print();
  std::printf("\n(b) # of block I/Os\n");
  io_table.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
