// bench_kernel: in-memory batch-kernel throughput, swept over --threads.
//
// Generates the Fig. 14 planted-SCC families (Table 2, scaled) wholly in
// memory — the shape 1PB-SCC hands its kernel on every batch — and times
// the serial Tarjan kernel against the parallel FB kernel at each thread
// count. Every parallel run is checked against the Tarjan partition; a
// mismatch is a hard failure. Reported per point: best-of-rounds wall
// time and the speedup over Tarjan. CI gates the 4-thread speedup via
// BENCH_<tag>.json (scripts/bench_compare + the workflow's assert step).
//
//   bench_kernel [--scale=S] [--degree=D] [--seed=N] [--threads=1,2,4,8]
//                [--granularity=N] [--rounds=N] [--report=FILE]
//
// --report writes the standard JSONL run report (docs/OBSERVABILITY.md),
// one "run" record per (family, kernel, threads) point with the kernel
// object carrying name / threads / granularity / micros.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "harness/table.h"
#include "obs/run_report.h"
#include "scc/algorithms.h"
#include "scc/parallel_scc.h"
#include "scc/tarjan.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace ioscc;  // bench binaries only

namespace {

std::vector<int> ParseIntList(const std::string& csv,
                              const std::vector<int>& fallback) {
  if (csv.empty()) return fallback;
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(std::atoi(csv.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

struct PointResult {
  double seconds = 0;   // best of --rounds
  SccResult result;
};

PointResult MeasureTarjan(const Digraph& graph, int rounds) {
  PointResult r;
  for (int round = 0; round < rounds; ++round) {
    Timer timer;
    SccResult result = TarjanScc(graph);
    const double seconds = timer.ElapsedSeconds();
    if (round == 0 || seconds < r.seconds) r.seconds = seconds;
    if (round == 0) r.result = std::move(result);
  }
  return r;
}

PointResult MeasureParallelFb(const Digraph& graph, int threads,
                              uint32_t granularity, int rounds) {
  PointResult r;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(size_t(threads));
  ParallelSccOptions options;
  options.pool = pool.get();
  options.granularity = granularity;
  for (int round = 0; round < rounds; ++round) {
    Timer timer;
    SccResult result = ParallelFbScc(graph, options);
    const double seconds = timer.ElapsedSeconds();
    if (round == 0 || seconds < r.seconds) r.seconds = seconds;
    if (round == 0) r.result = std::move(result);
  }
  return r;
}

void Report(RunReportWriter* report, const std::string& kernel,
            const std::string& dataset, int threads, uint32_t granularity,
            const PointResult& r) {
  if (report == nullptr) return;
  RunReportEntry entry;
  entry.experiment = "bench_kernel";
  entry.algorithm = kernel;
  entry.dataset = dataset;
  entry.status = Status::OK().ToString();
  entry.finished = true;
  entry.stats.seconds = r.seconds;
  entry.stats.kernel_invocations = 1;
  entry.stats.kernel_micros = static_cast<uint64_t>(r.seconds * 1e6);
  entry.kernel_name = kernel;
  entry.kernel_threads = static_cast<uint64_t>(threads);
  entry.kernel_granularity = granularity;
  entry.component_count = r.result.ComponentCount();
  entry.largest_component = r.result.LargestComponentSize();
  entry.nodes_in_nontrivial_sccs = r.result.NodesInNontrivialSccs();
  Status st = report->Append(entry);
  if (!st.ok()) {
    std::fprintf(stderr, "report: %s\n", st.ToString().c_str());
  }
}

std::string Secs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

std::string Speedup(double base, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx",
                seconds > 0 ? base / seconds : 0.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.01);
  const double degree_override = flags.GetDouble("degree", 0.0);
  const uint64_t seed = flags.GetInt("seed", 42);
  const std::vector<int> threads_list =
      ParseIntList(flags.GetString("threads", ""), {1, 2, 4, 8});
  const uint32_t granularity =
      static_cast<uint32_t>(flags.GetInt("granularity", 0));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 3));

  std::unique_ptr<RunReportWriter> report;
  const std::string report_path = flags.GetString("report", "");
  if (!report_path.empty()) {
    Status st = RunReportWriter::Open(report_path, &report);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // The Fig. 14 families at the paper's 30M point, scaled — the same
  // arithmetic as ScaledTable2 (bench_common.h), kept local so this stays
  // a flag-only binary without the sweep harness.
  struct {
    uint64_t nodes;
    double degree = 5.0;
    uint64_t massive_size;
    uint64_t large_size;
    uint64_t large_count = 50;
    uint64_t small_size = 40;
    uint64_t small_count;
  } defaults;
  defaults.nodes = static_cast<uint64_t>(scale * 30e6);
  defaults.massive_size =
      std::max<uint64_t>(100, static_cast<uint64_t>(scale * 400e3));
  defaults.large_size =
      std::max<uint64_t>(8, static_cast<uint64_t>(scale * 8e3));
  defaults.small_count =
      std::max<uint64_t>(10, static_cast<uint64_t>(scale * 10e3));
  const double degree =
      degree_override > 0 ? degree_override : defaults.degree;

  struct Family {
    const char* name;
    std::function<PlantedSccSpec()> spec;
  };
  const std::vector<Family> families = {
      {"Massive-SCC",
       [&] {
         return MassiveSccSpec(defaults.nodes, degree,
                               defaults.massive_size, seed);
       }},
      {"Large-SCC",
       [&] {
         return LargeSccSpec(defaults.nodes, degree, defaults.large_size,
                             defaults.large_count, seed);
       }},
      {"Small-SCC",
       [&] {
         return SmallSccSpec(defaults.nodes, degree, defaults.small_size,
                             defaults.small_count, seed);
       }},
  };

  std::printf("bench_kernel: %llu nodes/family, degree %.1f, best of %d\n",
              static_cast<unsigned long long>(defaults.nodes), degree,
              rounds);

  Table table({"family", "kernel", "threads", "seconds", "speedup"});
  for (const Family& family : families) {
    std::vector<Edge> edges;
    Status st = GeneratePlantedSccEdges(family.spec(), &edges);
    if (!st.ok()) {
      std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
      return 1;
    }
    Digraph graph(static_cast<NodeId>(defaults.nodes), edges);
    edges.clear();
    edges.shrink_to_fit();
    // No '/' in the name: the aggregator basenames path-like datasets
    // when stripping nondeterminism, which would fold all families onto
    // one comparison key.
    const std::string dataset =
        std::string(family.name) + ":" + std::to_string(defaults.nodes);

    PointResult tarjan = MeasureTarjan(graph, rounds);
    Report(report.get(), "tarjan", dataset, 1, 0, tarjan);
    table.AddRow({family.name, "tarjan", "1", Secs(tarjan.seconds), "1.00x"});

    for (int threads : threads_list) {
      PointResult fb =
          MeasureParallelFb(graph, threads, granularity, rounds);
      if (!(fb.result == tarjan.result)) {
        std::fprintf(stderr,
                     "FATAL: parallel_fb partition differs from tarjan "
                     "(%s, threads=%d)\n",
                     family.name, threads);
        return 1;
      }
      Report(report.get(), "parallel_fb", dataset, threads, granularity,
             fb);
      table.AddRow({family.name, "parallel_fb", std::to_string(threads),
                    Secs(fb.seconds),
                    Speedup(tarjan.seconds, fb.seconds)});
    }
  }
  table.Print();
  if (report != nullptr) {
    (void)report->AppendMetricsSnapshot();
    (void)report->Flush();
  }
  return 0;
}
