// Google-benchmark microbenchmarks for the building blocks: union-find,
// spanning-tree pushdown/ancestor checks, drank refresh, the in-memory
// oracle, and raw edge-file scan throughput.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "io/external_sort.h"
#include "scc/drank.h"
#include "scc/kosaraju.h"
#include "scc/reachability.h"
#include "scc/spanning_tree.h"
#include "scc/tarjan.h"
#include "scc/union_find.h"
#include "util/random.h"

namespace ioscc {
namespace {

void BM_UnionFind(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    UnionFind uf(n);
    for (NodeId i = 0; i < n; ++i) {
      uf.Union(static_cast<NodeId>(rng.Uniform(n)),
               static_cast<NodeId>(rng.Uniform(n)));
    }
    benchmark::DoNotOptimize(uf.Find(0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFind)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_TreePushdown(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    SpanningTree tree(n);
    // Random chain of pushdowns: attach each node under a random earlier
    // one (always legal: the target starts as a star sibling).
    for (NodeId v = 1; v < n; ++v) {
      NodeId u = static_cast<NodeId>(rng.Uniform(v));
      if (!tree.IsAncestor(v, u)) tree.Reparent(v, u);
    }
    benchmark::DoNotOptimize(tree.depth(n - 1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreePushdown)->Arg(1 << 12)->Arg(1 << 16);

void BM_AncestorCheck(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  SpanningTree tree(n);
  for (NodeId v = 1; v < n; ++v) tree.Reparent(v, v - 1);  // one long path
  Rng rng(3);
  for (auto _ : state) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(tree.IsAncestor(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AncestorCheck)->Arg(1 << 10)->Arg(1 << 14);

void BM_DrankRefresh(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  SpanningTree tree(n);
  std::vector<NodeId> backedge(n, kInvalidNode);
  for (NodeId v = 1; v < n; ++v) {
    NodeId u = static_cast<NodeId>(rng.Uniform(v));
    if (!tree.IsAncestor(v, u)) tree.Reparent(v, u);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (rng.OneIn(0.3)) {
      NodeId anc = tree.parent(v);
      if (anc != tree.root() && anc != kInvalidNode) backedge[v] = anc;
    }
  }
  for (auto _ : state) {
    DrankResult dr = ComputeDrank(tree, backedge);
    benchmark::DoNotOptimize(dr.drank[0]);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DrankRefresh)->Arg(1 << 12)->Arg(1 << 16);

void BM_TarjanScc(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::vector<Edge> edges;
  (void)GenerateUniformEdges(n, 4ull * n, 5, &edges);
  Digraph graph(n, edges);
  for (auto _ : state) {
    SccResult result = TarjanScc(graph);
    benchmark::DoNotOptimize(result.component.data());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_TarjanScc)->Arg(1 << 12)->Arg(1 << 16);

void BM_KosarajuScc(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::vector<Edge> edges;
  (void)GenerateUniformEdges(n, 4ull * n, 5, &edges);
  Digraph graph(n, edges);
  for (auto _ : state) {
    SccResult result = KosarajuScc(graph);
    benchmark::DoNotOptimize(result.component.data());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_KosarajuScc)->Arg(1 << 12)->Arg(1 << 16);

void BM_CondensationTarjan(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::vector<Edge> edges;
  (void)GenerateUniformEdges(n, 4ull * n, 5, &edges);
  Digraph graph(n, edges);
  for (auto _ : state) {
    SccResult scc;
    std::vector<NodeId> order;
    std::vector<Edge> dag = CondensationOf(graph, &scc, &order);
    benchmark::DoNotOptimize(dag.data());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_CondensationTarjan)->Arg(1 << 14);

void BM_CondensationKosaraju(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::vector<Edge> edges;
  (void)GenerateUniformEdges(n, 4ull * n, 5, &edges);
  Digraph graph(n, edges);
  for (auto _ : state) {
    SccResult scc;
    std::vector<NodeId> order;
    std::vector<Edge> dag = CondensationOfKosaraju(graph, &scc, &order);
    benchmark::DoNotOptimize(dag.data());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_CondensationKosaraju)->Arg(1 << 14);

void BM_GrailBuild(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(11);
  std::vector<Edge> edges;
  for (uint64_t e = 0; e < 4ull * n; ++e) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a != b) edges.push_back(Edge{std::min(a, b), std::max(a, b)});
  }
  Digraph dag(n, edges);
  for (auto _ : state) {
    GrailIndex index(dag, 2, 7);
    benchmark::DoNotOptimize(&index);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GrailBuild)->Arg(1 << 14);

void BM_GrailQuery(benchmark::State& state) {
  const NodeId n = 1 << 14;
  Rng rng(13);
  std::vector<Edge> edges;
  for (uint64_t e = 0; e < 4ull * n; ++e) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a != b) edges.push_back(Edge{std::min(a, b), std::max(a, b)});
  }
  Digraph dag(n, edges);
  GrailIndex index(dag, static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(index.Reaches(dag, u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GrailQuery)->Arg(1)->Arg(2)->Arg(4);

void BM_ExternalSort(benchmark::State& state) {
  static std::unique_ptr<TempDir> dir = [] {
    std::unique_ptr<TempDir> d;
    (void)TempDir::Create("ioscc-sortbench", &d);
    return d;
  }();
  const NodeId n = 1 << 16;
  const uint64_t m = static_cast<uint64_t>(state.range(0));
  std::vector<Edge> edges;
  (void)GenerateUniformEdges(n, m, 17, &edges);
  std::string in = dir->NewFilePath(".edges");
  (void)WriteEdgeFile(in, n, edges, kDefaultBlockSize, nullptr);
  ExternalSortOptions options;
  options.memory_budget_bytes = m;  // ~8 runs
  for (auto _ : state) {
    std::string out = dir->NewFilePath(".sorted");
    Status st = SortEdgeFile(in, out, options, dir.get(), nullptr);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ExternalSort)->Arg(1 << 18)->Arg(1 << 20);

void BM_EdgeScan(benchmark::State& state) {
  static std::unique_ptr<TempDir> dir = [] {
    std::unique_ptr<TempDir> d;
    (void)TempDir::Create("ioscc-microbench", &d);
    return d;
  }();
  const NodeId n = 1 << 16;
  const uint64_t m = static_cast<uint64_t>(state.range(0));
  std::vector<Edge> edges;
  (void)GenerateUniformEdges(n, m, 6, &edges);
  std::string path = dir->NewFilePath(".edges");
  (void)WriteEdgeFile(path, n, edges, kDefaultBlockSize, nullptr);
  IoStats stats;
  std::unique_ptr<EdgeScanner> scanner;
  (void)EdgeScanner::Open(path, &stats, &scanner);
  for (auto _ : state) {
    scanner->Reset();
    Edge edge;
    uint64_t checksum = 0;
    while (scanner->Next(&edge)) checksum += edge.from ^ edge.to;
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * m);
  state.SetBytesProcessed(state.iterations() * m * sizeof(Edge));
}
BENCHMARK(BM_EdgeScan)->Arg(1 << 18)->Arg(1 << 22);

}  // namespace
}  // namespace ioscc

BENCHMARK_MAIN();
