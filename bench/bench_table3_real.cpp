// Regenerates Table 3: time and # of I/Os for 1PB-SCC, 1P-SCC, 2P-SCC and
// DFS-SCC on the three citation-dataset stand-ins (cit-patents,
// go-uniprot, citeseerx; see DESIGN.md §3 for the substitutions).
//
// Shape to reproduce (paper, at full scale): 1P/1PB are 1-2 orders of
// magnitude faster and cheaper in I/O than 2P and DFS; 1PB uses fewer
// I/Os than 1P on go-uniprot (small average SCCs) but slightly more on
// the other two.
//
// Also prints the Section 2 analytic comparison: the Buchsbaum et al.
// theoretical DFS I/O bound vs our measured totals.

#include "bench/bench_common.h"
#include "harness/theory.h"

namespace ioscc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchContext ctx;
  // Generous default cap: DFS-SCC finishes all three datasets (slowest by
  // 1-2 orders of magnitude), matching the paper's Table 3 shape.
  ctx.time_limit = 240.0;
  if (!InitBench(argc, argv, &ctx)) return 1;

  struct Dataset {
    std::string name;
    std::string path;
  };
  std::vector<Dataset> datasets(3);
  datasets[0].name = "cit-patents";
  datasets[1].name = "go-uniprot";
  datasets[2].name = "citeseerx";
  Status st = ctx.datasets->CitPatentsSim(ctx.scale, ctx.seed,
                                          &datasets[0].path);
  if (st.ok()) {
    st = ctx.datasets->GoUniprotSim(ctx.scale, ctx.seed, &datasets[1].path);
  }
  if (st.ok()) {
    st = ctx.datasets->CiteseerxSim(ctx.scale, ctx.seed, &datasets[2].path);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }

  const std::vector<SccAlgorithm> algorithms = {
      SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
      SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs};

  std::printf("== Table 3: real-dataset stand-ins (T: time, I/O: block "
              "I/Os) ==\n");
  for (const Dataset& d : datasets) PrintDatasetLine(d.name, d.path);
  std::printf("\n");

  Table table({"Name", "1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC"});
  std::vector<std::vector<RunOutcome>> outcomes(datasets.size());
  for (size_t i = 0; i < datasets.size(); ++i) {
    DatasetStats ds;
    (void)DatasetBuilder::Describe(datasets[i].path, &ds);
    SemiExternalOptions options = ctx.Options(ds.node_count);
    for (SccAlgorithm algorithm : algorithms) {
      outcomes[i].push_back(Run(ctx, algorithm, datasets[i].path, options));
    }
  }
  for (size_t i = 0; i < datasets.size(); ++i) {
    std::vector<std::string> row = {datasets[i].name + " (T)"};
    for (const RunOutcome& o : outcomes[i]) row.push_back(TimeCell(o));
    table.AddRow(row);
  }
  for (size_t i = 0; i < datasets.size(); ++i) {
    std::vector<std::string> row = {datasets[i].name + " (I/O)"};
    for (const RunOutcome& o : outcomes[i]) row.push_back(IoCell(o));
    table.AddRow(row);
  }
  table.Print();

  std::printf("\n== Section 2 analytic comparison ==\n");
  Table theory({"Name", "Buchsbaum DFS bound", "1PB-SCC measured"});
  for (size_t i = 0; i < datasets.size(); ++i) {
    DatasetStats ds;
    (void)DatasetBuilder::Describe(datasets[i].path, &ds);
    SemiExternalOptions options = ctx.Options(ds.node_count);
    theory.AddRow({datasets[i].name,
                   FormatCount(TheoryBuchsbaumDfsIos(
                       ds.node_count, ds.edge_count,
                       options.memory_budget_bytes, kDefaultBlockSize)),
                   IoCell(outcomes[i][0])});
  }
  theory.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
