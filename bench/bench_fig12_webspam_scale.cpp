// Regenerates Fig. 12: WEBSPAM-UK2007 stand-in, varying the induced-
// subgraph node fraction from 20% to 100%; (a) time, (b) # of I/Os.
//
// Shape to reproduce: 1PB-SCC finishes at every size; 1P-SCC stops
// finishing above ~60%; DFS-SCC and 2P-SCC hit the cap early.

#include "bench/bench_common.h"
#include "graph/graph_io.h"

namespace ioscc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchContext ctx;
  ctx.scale = 0.002;
  ctx.time_limit = 30.0;
  Flags flags;
  if (!InitBench(argc, argv, &ctx, &flags)) return 1;
  const uint64_t nodes = static_cast<uint64_t>(ctx.scale * 105'895'908.0);
  const double degree = flags.GetDouble("degree", 35.0);

  std::string full;
  Status st = ctx.datasets->WebspamSim(nodes, degree, ctx.seed, &full);
  if (!st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("== Fig. 12: webspam-sim, varying node fraction ==\n");
  PrintDatasetLine("dataset (100%)", full);

  std::vector<SweepPoint> points;
  for (int pct : {20, 40, 60, 80, 100}) {
    SweepPoint point;
    point.label = std::to_string(pct) + "%";
    if (pct == 100) {
      point.path = full;
    } else {
      point.path = ctx.datasets->NewPath(".edges");
      st = InduceSubgraphByNodePrefix(full, pct / 100.0, point.path,
                                      nullptr);
      if (!st.ok()) {
        std::fprintf(stderr, "induce: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    points.push_back(point);
  }

  PrintSweep(ctx, "fraction", points,
             {SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
              SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
