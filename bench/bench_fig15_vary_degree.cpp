// Regenerates Fig. 15: synthetic graphs, varying the average degree 3..7
// for the three SCC families; (a,c,e) time and (b,d,f) # of I/Os.
//
// Shape to reproduce: costs grow with degree for all algorithms; 1PB-SCC
// grows slowest (batch SCC merging benefits from density); DFS-SCC and
// 2P-SCC only handle the low-degree end before hitting the cap.

#include "bench/bench_common.h"

namespace ioscc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchContext ctx;
  ctx.scale = 0.005;
  ctx.time_limit = 12.0;
  if (!InitBench(argc, argv, &ctx)) return 1;
  const Table2Defaults defaults = ScaledTable2(ctx.scale);

  const std::vector<SccAlgorithm> algorithms = {
      SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
      SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs};

  struct Family {
    const char* name;
    std::function<PlantedSccSpec(double degree)> spec;
  };
  const std::vector<Family> families = {
      {"Massive-SCC",
       [&](double degree) {
         return MassiveSccSpec(defaults.nodes, degree,
                               defaults.massive_size, ctx.seed);
       }},
      {"Large-SCC",
       [&](double degree) {
         return LargeSccSpec(defaults.nodes, degree, defaults.large_size,
                             defaults.large_count, ctx.seed);
       }},
      {"Small-SCC",
       [&](double degree) {
         return SmallSccSpec(defaults.nodes, degree, defaults.small_size,
                             defaults.small_count, ctx.seed);
       }},
  };

  std::printf("== Fig. 15: synthetic data, varying average degree ==\n");
  for (const Family& family : families) {
    std::printf("\n--- %s ---\n", family.name);
    std::vector<SweepPoint> points;
    for (int degree : {3, 4, 5, 6, 7}) {
      SweepPoint point;
      point.label = "D=" + std::to_string(degree);
      Status st = ctx.datasets->FromPlantedSpec(
          family.spec(static_cast<double>(degree)), &point.path);
      if (!st.ok()) {
        std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
        return 1;
      }
      points.push_back(point);
    }
    PrintSweep(ctx, "degree", points, algorithms);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
