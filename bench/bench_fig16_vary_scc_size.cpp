// Regenerates Fig. 16: synthetic graphs, varying the planted SCC size
// (paper: Massive 200K..600K, Large 4K..12K, Small 20..60; the first two
// are scaled by --scale); (a,c,e) time and (b,d,f) # of I/Os.
//
// Shape to reproduce: only 1P-SCC and 1PB-SCC finish the Massive-SCC
// sweep; 1PB-SCC is best; 2P-SCC only completes the Small-SCC end.

#include "bench/bench_common.h"

namespace ioscc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchContext ctx;
  ctx.scale = 0.005;
  ctx.time_limit = 12.0;
  if (!InitBench(argc, argv, &ctx)) return 1;
  const Table2Defaults defaults = ScaledTable2(ctx.scale);

  const std::vector<SccAlgorithm> algorithms = {
      SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
      SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs};

  std::printf("== Fig. 16: synthetic data, varying SCC size ==\n");

  {
    std::printf("\n--- Massive-SCC ---\n");
    std::vector<SweepPoint> points;
    for (int k : {200, 300, 400, 500, 600}) {
      uint64_t size = std::max<uint64_t>(
          100, static_cast<uint64_t>(ctx.scale * k * 1e3));
      SweepPoint point;
      point.label = FormatCompact(size);
      Status st = ctx.datasets->FromPlantedSpec(
          MassiveSccSpec(defaults.nodes, defaults.degree, size, ctx.seed),
          &point.path);
      if (!st.ok()) return 1;
      points.push_back(point);
    }
    PrintSweep(ctx, "SCC size", points, algorithms);
  }
  {
    std::printf("\n--- Large-SCC ---\n");
    std::vector<SweepPoint> points;
    for (int k : {4, 6, 8, 10, 12}) {
      uint64_t size = std::max<uint64_t>(
          4, static_cast<uint64_t>(ctx.scale * k * 1e3));
      SweepPoint point;
      point.label = FormatCompact(size);
      Status st = ctx.datasets->FromPlantedSpec(
          LargeSccSpec(defaults.nodes, defaults.degree, size,
                       defaults.large_count, ctx.seed),
          &point.path);
      if (!st.ok()) return 1;
      points.push_back(point);
    }
    PrintSweep(ctx, "SCC size", points, algorithms);
  }
  {
    std::printf("\n--- Small-SCC ---\n");
    std::vector<SweepPoint> points;
    for (int size : {20, 30, 40, 50, 60}) {
      SweepPoint point;
      point.label = std::to_string(size);
      Status st = ctx.datasets->FromPlantedSpec(
          SmallSccSpec(defaults.nodes, defaults.degree, size,
                       defaults.small_count, ctx.seed),
          &point.path);
      if (!st.ok()) return 1;
      points.push_back(point);
    }
    PrintSweep(ctx, "SCC size", points, algorithms);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
