// bench_io: throughput of the threaded I/O pipeline, swept over
// --threads and --prefetch-depth (docs/PERFORMANCE.md).
//
// Two workloads per sweep point, on one generated uniform edge file:
//   scan   sequential EdgeScanner pass (decode + checksum every edge)
//   sort   SortEdgeFile under a small memory budget (run formation +
//          k-way merge)
//
// Reported per point: wall-clock MB/s and read_stall_micros — the time
// the consuming thread spent blocked on the disk (demand reads,
// synchronous read-ahead, waits for in-flight prefetch fills). Logical
// block I/O is byte-identical across the whole sweep; only the stall
// time and physical scheduling change. CI asserts the scan stall is
// monotonically non-increasing in prefetch depth (within tolerance).
//
//   bench_io [--edges=N] [--seed=N] [--threads=0,2] [--depths=0,1,4,16]
//            [--budget-mib=M] [--report=FILE]
//
// --report writes the standard JSONL run report (docs/OBSERVABILITY.md),
// one "run" record per (workload, threads, depth) point with the cache
// object carrying prefetch_depth / io_threads.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "harness/table.h"
#include "io/block_cache.h"
#include "io/edge_file.h"
#include "io/external_sort.h"
#include "io/temp_dir.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace ioscc;  // bench binaries only

namespace {

std::vector<int> ParseIntList(const std::string& csv,
                              const std::vector<int>& fallback) {
  if (csv.empty()) return fallback;
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(std::atoi(csv.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

struct PointResult {
  double seconds = 0;
  IoStats io;
  std::vector<PhaseProfile> phases;
};

// One measured workload run under an installed (pool, cache) pair.
PointResult MeasureScan(const std::string& path) {
  PointResult r;
  Timer timer;
  TraceSpan span("io.scan", &r.io);
  std::unique_ptr<EdgeScanner> scanner;
  Status st = EdgeScanner::Open(path, &r.io, &scanner);
  if (!st.ok()) {
    std::fprintf(stderr, "scan open: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  Edge edge;
  uint64_t checksum = 0;
  while (scanner->Next(&edge)) checksum += edge.from ^ edge.to;
  if (!scanner->status().ok()) {
    std::fprintf(stderr, "scan: %s\n", scanner->status().ToString().c_str());
    std::exit(1);
  }
  r.seconds = timer.ElapsedSeconds();
  // Keep the decode loop honest against dead-code elimination.
  if (checksum == 0xdeadbeef) std::fprintf(stderr, "\n");
  return r;
}

PointResult MeasureSort(const std::string& path, TempDir* scratch,
                        size_t budget_bytes) {
  PointResult r;
  Timer timer;
  TraceSpan span("io.sort", &r.io);
  ExternalSortOptions options;
  options.memory_budget_bytes = budget_bytes;
  std::string out_path = scratch->NewFilePath(".sorted");
  Status st = SortEdgeFile(path, out_path, options, scratch, &r.io);
  if (!st.ok()) {
    std::fprintf(stderr, "sort: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  r.seconds = timer.ElapsedSeconds();
  std::remove(out_path.c_str());
  return r;
}

void Report(RunReportWriter* report, const char* workload,
            const std::string& path, int threads, int depth,
            const PointResult& r) {
  if (report == nullptr) return;
  RunReportEntry entry;
  entry.experiment = "bench_io";
  entry.algorithm = workload;
  entry.dataset = path;
  entry.status = Status::OK().ToString();
  entry.finished = true;
  entry.stats.io = r.io;
  entry.stats.seconds = r.seconds;
  entry.prefetch_depth = static_cast<uint64_t>(depth);
  entry.io_threads = static_cast<uint64_t>(threads);
  entry.phases = r.phases;
  Status st = report->Append(entry);
  if (!st.ok()) {
    std::fprintf(stderr, "report: %s\n", st.ToString().c_str());
  }
}

std::string MbPerSec(const PointResult& r) {
  const double mb =
      static_cast<double>(r.io.bytes_read + r.io.bytes_written) / 1e6;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                r.seconds > 0 ? mb / r.seconds : 0.0);
  return buf;
}

std::string StallMs(const PointResult& r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f",
                static_cast<double>(r.io.read_stall_micros) / 1000.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const uint64_t edge_count = flags.GetInt("edges", 2'000'000);
  const uint64_t seed = flags.GetInt("seed", 42);
  const std::vector<int> threads_list =
      ParseIntList(flags.GetString("threads", ""), {0, 2});
  const std::vector<int> depth_list =
      ParseIntList(flags.GetString("depths", ""), {0, 1, 4, 16});
  const size_t budget_bytes =
      static_cast<size_t>(flags.GetDouble("budget-mib", 4.0) * 1024 * 1024);

  std::unique_ptr<RunReportWriter> report;
  std::unique_ptr<PhaseProfiler> profiler;
  const std::string report_path = flags.GetString("report", "");
  if (!report_path.empty()) {
    Status st = RunReportWriter::Open(report_path, &report);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    // Profile the io.scan/io.sort spans (wall/CPU/RSS per point) and
    // turn on the sampled metrics, same as the bench_common sinks.
    SetMetricsEnabled(true);
    profiler = std::make_unique<PhaseProfiler>();
    SetPhaseProfiler(profiler.get());
  }

  std::unique_ptr<TempDir> scratch;
  Status st = TempDir::Create("bench_io", &scratch);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint64_t node_count = std::max<uint64_t>(16, edge_count / 4);
  std::vector<Edge> edges;
  st = GenerateUniformEdges(node_count, edge_count, seed, &edges);
  const std::string path = scratch->FilePath("input.edges");
  if (st.ok()) {
    st = WriteEdgeFile(path, node_count, edges, kDefaultBlockSize, nullptr);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  edges.clear();
  edges.shrink_to_fit();
  std::printf("bench_io: %llu edges (%.1f MB), sort budget %.1f MiB\n",
              static_cast<unsigned long long>(edge_count),
              static_cast<double>(edge_count * sizeof(Edge)) / 1e6,
              static_cast<double>(budget_bytes) / (1024.0 * 1024.0));

  Table table({"threads", "depth", "scan MB/s", "scan stall ms",
               "sort MB/s", "sort stall ms"});
  for (int threads : threads_list) {
    for (int depth : depth_list) {
      // Fresh pool + carrier cache per point, installed before any file
      // opens and torn down after the last one closes. The budget-0
      // cache holds no blocks; it only carries the read-ahead setting.
      std::unique_ptr<ThreadPool> pool;
      if (threads > 0) {
        pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
        SetIoThreadPool(pool.get());
      }
      BlockCache cache(0);
      cache.set_prefetch_depth(depth);
      SetBlockCache(&cache);

      std::vector<PhaseProfile> mark;
      if (profiler != nullptr) mark = profiler->Snapshot();
      PointResult scan = MeasureScan(path);
      if (profiler != nullptr) {
        std::vector<PhaseProfile> now = profiler->Snapshot();
        scan.phases = PhaseProfiler::Delta(mark, now);
        mark = std::move(now);
      }
      PointResult sort = MeasureSort(path, scratch.get(), budget_bytes);
      if (profiler != nullptr) {
        sort.phases = PhaseProfiler::Delta(mark, profiler->Snapshot());
      }

      SetBlockCache(nullptr);
      if (pool != nullptr) SetIoThreadPool(nullptr);

      Report(report.get(), "scan", path, threads, depth, scan);
      Report(report.get(), "sort", path, threads, depth, sort);
      table.AddRow({std::to_string(threads), std::to_string(depth),
                    MbPerSec(scan), StallMs(scan), MbPerSec(sort),
                    StallMs(sort)});
    }
  }
  table.Print();
  if (profiler != nullptr) {
    SetPhaseProfiler(nullptr);
    if (report != nullptr) {
      (void)report->AppendPhaseProfiles(profiler->Snapshot());
    }
  }
  if (report != nullptr) {
    (void)report->AppendMetricsSnapshot();
    (void)report->Flush();
  }
  return 0;
}
