// Ablation study over the optimization techniques of Section 7, on the
// WEBSPAM-UK2007 stand-in (the workload the paper uses to motivate them):
//
//   (1) 1P/1PB with both optimizations vs early-acceptance-only vs
//       early-rejection-only vs neither (extends Table 1's with/without
//       comparison to the individual techniques);
//   (2) the early-acceptance threshold tau swept around the paper's 0.5%;
//   (3) the early-rejection cadence swept around the paper's 5;
//   (4) accumulate-during-scan vs frozen-scan rejection bounds (the
//       soundness trade-off documented in one_phase.cc).

#include "bench/bench_common.h"

namespace ioscc {
namespace bench {
namespace {

struct Variant {
  std::string name;
  SemiExternalOptions options;
};

void RunVariants(const BenchContext& ctx, const std::string& path,
                 SccAlgorithm algorithm, const std::vector<Variant>& variants,
                 const char* title) {
  std::printf("\n-- %s (%s) --\n", title, AlgorithmName(algorithm));
  Table table({"variant", "time", "# I/Os", "iterations", "accepted",
               "rejected"});
  for (const Variant& variant : variants) {
    RunOutcome outcome = Run(ctx, algorithm, path, variant.options);
    table.AddRow({variant.name, TimeCell(outcome), IoCell(outcome),
                  outcome.Finished()
                      ? FormatCount(outcome.stats.iterations)
                      : "-",
                  FormatCount(outcome.stats.nodes_accepted),
                  FormatCount(outcome.stats.nodes_rejected)});
  }
  table.Print();
}

int Main(int argc, char** argv) {
  BenchContext ctx;
  ctx.scale = 0.002;
  ctx.time_limit = 60.0;
  Flags flags;
  if (!InitBench(argc, argv, &ctx, &flags)) return 1;
  const uint64_t nodes = static_cast<uint64_t>(ctx.scale * 105'895'908.0);
  const double degree = flags.GetDouble("degree", 35.0);

  std::string path;
  Status st = ctx.datasets->WebspamSim(nodes, degree, ctx.seed, &path);
  if (!st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("== Ablation of the Section 7 optimizations ==\n");
  PrintDatasetLine("dataset", path);
  DatasetStats ds;
  (void)DatasetBuilder::Describe(path, &ds);
  const SemiExternalOptions base = ctx.Options(ds.node_count);

  // (1) Optimization on/off matrix.
  for (SccAlgorithm algorithm :
       {SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase}) {
    std::vector<Variant> variants;
    {
      Variant v{"EA + ER (paper defaults)", base};
      variants.push_back(v);
    }
    {
      Variant v{"EA only", base};
      v.options.reject_interval = 0;
      variants.push_back(v);
    }
    {
      Variant v{"ER only", base};
      v.options.tau_fraction = -1.0;
      variants.push_back(v);
    }
    {
      Variant v{"neither", base};
      v.options.tau_fraction = -1.0;
      v.options.reject_interval = 0;
      variants.push_back(v);
    }
    RunVariants(ctx, path, algorithm, variants,
                "early acceptance / early rejection matrix");
  }

  // (2) tau sweep (1PB).
  {
    std::vector<Variant> variants;
    for (double tau : {0.0, 0.001, 0.005, 0.02, 0.1}) {
      Variant v{"tau = " + FormatPercent(tau), base};
      v.options.tau_fraction = tau;
      variants.push_back(v);
    }
    RunVariants(ctx, path, SccAlgorithm::kOnePhaseBatch, variants,
                "early-acceptance threshold tau");
  }

  // (3) rejection cadence sweep (1PB).
  {
    std::vector<Variant> variants;
    for (uint32_t interval : {1u, 2u, 5u, 10u}) {
      Variant v{"every " + std::to_string(interval), base};
      v.options.reject_interval = interval;
      variants.push_back(v);
    }
    RunVariants(ctx, path, SccAlgorithm::kOnePhaseBatch, variants,
                "early-rejection cadence");
  }

  // (4) loose vs strict rejection bounds (1P).
  {
    std::vector<Variant> variants;
    {
      Variant v{"accumulated bounds", base};
      v.options.strict_rejection = false;
      variants.push_back(v);
    }
    {
      Variant v{"frozen-scan bounds", base};
      v.options.strict_rejection = true;
      variants.push_back(v);
    }
    RunVariants(ctx, path, SccAlgorithm::kOnePhase, variants,
                "rejection bound computation");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
