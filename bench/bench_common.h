// Shared plumbing for the per-table/figure bench binaries.
//
// Every bench accepts:
//   --scale=<f>        scale factor vs the paper's dataset sizes
//   --seed=<n>         generator seed
//   --time-limit=<s>   per-run wall-clock cap (runs over it print INF,
//                      exactly like the paper's 5h cap)
//   --verify           cross-check every finished run against the
//                      in-memory oracle (slower; loads the graph once)
//   --verbose          per-iteration progress on stderr
//   --trace=FILE       write a Chrome trace_event JSON of every span
//                      (open in chrome://tracing or ui.perfetto.dev)
//   --report=FILE      write a JSONL run report: one "run" record per
//                      algorithm execution + a final "metrics" snapshot
//                      (schema in docs/OBSERVABILITY.md)
//   --audit=FILE       record every logical block access and write an
//                      audit log (inspect with examples/io_audit_tool);
//                      each run's I/O-budget verdict rides along in it
//   --cache-blocks=N   install a real N-block buffer manager + read-ahead
//                      between BlockFile and the disk
//                      (io/buffer_manager.h). Logical I/O counts and
//                      results are byte-identical at every N; only
//                      physical reads drop. 0 (default) = no cache,
//                      exactly the historical behavior
//   --cache-policy=P   eviction policy for --cache-blocks: "lru"
//                      (default) or "clock" (second-chance). Identical
//                      logical I/O and results; only the hit/miss split
//                      (and therefore physical reads) can differ
//   --io-backend=B     page provider for every BlockFile: "pread"
//                      (default; buffered stdio) or "direct" (O_DIRECT,
//                      page cache bypassed; silently falls back to
//                      buffered where unsupported). Never changes
//                      results or logical I/O
//   --threads=N        install an N-worker I/O thread pool (async block
//                      prefetch, parallel run sorting). 0 (default) =
//                      no pool, fully serial. Results, logical I/O and
//                      the audit log are byte-identical at every N
//                      (docs/PERFORMANCE.md)
//   --prefetch-depth=N read-ahead pipeline depth: 0 = none, 1 (default)
//                      = the classic synchronous double buffer, >= 2 =
//                      async N-deep window (needs --threads >= 1).
//                      Implies a cache seam: with --cache-blocks=0 a
//                      budget-0 cache is installed to carry the setting
//   --kernel=K         in-memory batch kernel for 1PB-SCC: "tarjan"
//                      (default), "kosaraju", or "parallel_fb" (the
//                      forward-backward divide-and-conquer kernel,
//                      scc/parallel_scc.h). RAM-only either way: results
//                      and the logical I/O ledger are byte-identical
//   --kernel-threads=N workers for --kernel=parallel_fb: 0 (default) =
//                      one per hardware thread, 1 = serial, N = pool of
//                      N. Output is identical at every N
//   --kernel-granularity=N  simultaneous BFS sources per kernel task
//                      (0 = default, scc/parallel_scc.h)
//   --progress         live telemetry status line on stderr (TTY: one
//                      updating line; non-TTY: throttled newline records)
//   --telemetry-interval-ms=N   sampler cadence (default 200)
//   --watchdog-ms=N    arm the stall watchdog: dump a diagnostic when
//                      logical I/O and the iteration gauge both freeze
//                      for N ms (obs/telemetry.h). 0 (default) = off
//   --full-iterations  emit the exact per_iteration array in the report
//                      instead of the stride-downsampled default
//   --version          print build provenance (git SHA, compiler, build
//                      type) and exit

#ifndef IOSCC_BENCH_BENCH_COMMON_H_
#define IOSCC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/graph_io.h"
#include "harness/datasets.h"
#include "harness/io_budget.h"
#include "harness/runner.h"
#include "harness/theory.h"
#include "io/block_cache.h"
#include "io/block_file.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "scc/algorithms.h"
#include "scc/tarjan.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/signals.h"
#include "util/thread_pool.h"

namespace ioscc {
namespace bench {

struct BenchContext {
  double scale = 0.01;
  uint64_t seed = 42;
  double time_limit = 60.0;
  bool verify = false;
  std::string name;  // bench binary name; labels report entries
  std::unique_ptr<DatasetBuilder> datasets;
  // Optional machine-readable sink (--csv=FILE): every sweep table is
  // appended as CSV alongside the human-readable output.
  std::FILE* csv = nullptr;
  // Optional observability sinks (--trace=FILE / --report=FILE /
  // --audit=FILE).
  std::unique_ptr<Tracer> tracer;
  std::string trace_path;
  std::unique_ptr<RunReportWriter> report;
  // Per-phase resource profiler (obs/phase_profiler.h), installed
  // whenever a trace or report sink is: spans then also sample CPU time
  // and peak RSS, runs gain a "phases" array, and the report ends with a
  // whole-process {"type":"phases"} record.
  std::unique_ptr<PhaseProfiler> profiler;
  std::unique_ptr<BlockAccessLog> audit;
  std::string audit_path;
  // Real buffer manager (--cache-blocks=N, N > 0); see
  // io/buffer_manager.h. Policy and backend are recorded for the report.
  std::unique_ptr<BufferManager> cache;
  std::string cache_policy = "lru";
  std::string io_backend = "pread";
  // I/O worker pool (--threads=N, N > 0); see util/thread_pool.h.
  std::unique_ptr<ThreadPool> pool;
  int io_threads = 0;
  int prefetch_depth = 1;
  // In-memory batch kernel (--kernel=K); kernel_set records whether the
  // flag was passed so default runs keep their historical report lines.
  bool kernel_set = false;
  BatchKernel kernel = BatchKernel::kTarjan;
  uint32_t kernel_threads = 0;
  uint32_t kernel_granularity = 0;
  // Live telemetry engine (obs/telemetry.h), installed whenever a report
  // sink, --progress, or --watchdog-ms asks for it. Declared after the
  // pool so its destructor joins the sampler thread before the pool it
  // observes is torn down.
  std::unique_ptr<Telemetry> telemetry;
  bool full_iterations = false;
  // Cumulative watchdog count already attributed to earlier run entries.
  mutable uint64_t watchdog_fires_seen = 0;

  ~BenchContext() {
    // Finalize sinks when the bench returns from Main. The pool is
    // uninstalled first (every BlockFile is closed by now) and joined
    // when the member is destroyed after this body.
    if (pool != nullptr) SetIoThreadPool(nullptr);
    if (telemetry != nullptr) {
      SetTelemetry(nullptr);
      if (report != nullptr) {
        (void)report->AppendRecordJson(telemetry->TimeseriesToJson());
        (void)report->AppendRecordJson(telemetry->WatchdogReportJson());
      }
    }
    if (cache != nullptr) {
      SetBlockCache(nullptr);
      const BufferManager::Stats cs = cache->stats();
      std::fprintf(stderr,
                   "cache(%s): %llu blocks, %llu hits, %llu misses, "
                   "%llu prefetch hits, %llu evictions\n",
                   cache_policy.c_str(),
                   static_cast<unsigned long long>(cache->budget_blocks()),
                   static_cast<unsigned long long>(cs.hits),
                   static_cast<unsigned long long>(cs.misses),
                   static_cast<unsigned long long>(cs.prefetch_hits),
                   static_cast<unsigned long long>(cs.evictions));
    }
    if (audit != nullptr) {
      SetBlockAccessLog(nullptr);
      Status st = audit->WriteTo(audit_path);
      if (!st.ok()) {
        std::fprintf(stderr, "audit: %s\n", st.ToString().c_str());
      }
    }
    if (profiler != nullptr) {
      SetPhaseProfiler(nullptr);
      if (report != nullptr) {
        (void)report->AppendPhaseProfiles(profiler->Snapshot());
      }
    }
    if (report != nullptr) {
      (void)report->AppendMetricsSnapshot();
      (void)report->Flush();
    }
    if (tracer != nullptr) {
      SetTracer(nullptr);
      Status st = tracer->WriteChromeTrace(trace_path);
      if (!st.ok()) {
        std::fprintf(stderr, "trace: %s\n", st.ToString().c_str());
      }
    }
    if (csv != nullptr) std::fclose(csv);
  }

  // The paper's default memory grant M = 4 bytes * 3|V| + one block.
  SemiExternalOptions Options(uint64_t node_count) const {
    SemiExternalOptions options;
    options.time_limit_seconds = time_limit;
    options.memory_budget_bytes =
        PaperDefaultMemoryBytes(node_count, kDefaultBlockSize);
    options.batch_kernel = kernel;
    options.kernel_threads = kernel_threads;
    options.kernel_granularity = kernel_granularity;
    return options;
  }
};

// Maps a bench Main's return through the graceful-signal state: a run
// cancelled by SIGINT/SIGTERM (the harness wraps every progress callback
// with the check, and BenchContext's destructor has flushed the report/
// telemetry/trace sinks by the time Main returns) exits 128+sig instead
// of Main's own code, so scripts can tell "interrupted" from "failed".
inline int BenchExitCode(int code) {
  const int graceful = GracefulExitCode();
  return graceful != 0 ? graceful : code;
}

inline bool InitBench(int argc, char** argv, BenchContext* ctx,
                      Flags* flags_out = nullptr) {
  InstallGracefulSignalHandlers();
  Flags flags = Flags::Parse(argc, argv);
  if (argc > 0) {
    ctx->name = argv[0];
    const size_t slash = ctx->name.find_last_of('/');
    if (slash != std::string::npos) ctx->name = ctx->name.substr(slash + 1);
  }
  if (flags.GetBool("version", false)) {
    std::printf("%s\n", BuildVersionLine(ctx->name).c_str());
    std::exit(0);
  }
  ctx->scale = flags.GetDouble("scale", ctx->scale);
  ctx->seed = static_cast<uint64_t>(flags.GetInt("seed", ctx->seed));
  ctx->time_limit = flags.GetDouble("time-limit", ctx->time_limit);
  ctx->verify = flags.GetBool("verify", false);
  if (flags.GetBool("verbose", false)) SetLogLevel(LogLevel::kDebug);
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    ctx->csv = std::fopen(csv_path.c_str(), "w");
    if (ctx->csv == nullptr) {
      std::fprintf(stderr, "cannot open --csv file %s\n", csv_path.c_str());
      return false;
    }
  }
  ctx->trace_path = flags.GetString("trace", "");
  if (!ctx->trace_path.empty()) {
    ctx->tracer = std::make_unique<Tracer>();
    SetTracer(ctx->tracer.get());
  }
  const std::string report_path = flags.GetString("report", "");
  if (!report_path.empty()) {
    Status st = RunReportWriter::Open(report_path, &ctx->report);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return false;
    }
  }
  ctx->audit_path = flags.GetString("audit", "");
  if (!ctx->audit_path.empty()) {
    // Installed before any dataset is built so generator writes are
    // audited too; budget verdicts are appended per run in Run().
    ctx->audit = std::make_unique<BlockAccessLog>();
    SetBlockAccessLog(ctx->audit.get());
  }
  const int64_t cache_blocks = flags.GetInt("cache-blocks", 0);
  if (cache_blocks < 0) {
    std::fprintf(stderr, "--cache-blocks must be >= 0\n");
    return false;
  }
  const int64_t threads = flags.GetInt("threads", 0);
  const int64_t prefetch_depth = flags.GetInt("prefetch-depth", 1);
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return false;
  }
  if (prefetch_depth < 0) {
    std::fprintf(stderr, "--prefetch-depth must be >= 0\n");
    return false;
  }
  ctx->cache_policy = flags.GetString("cache-policy", "lru");
  if (ctx->cache_policy != "lru" && ctx->cache_policy != "clock") {
    std::fprintf(stderr, "--cache-policy must be lru or clock (got %s)\n",
                 ctx->cache_policy.c_str());
    return false;
  }
  ctx->io_backend = flags.GetString("io-backend", "pread");
  if (ctx->io_backend != "pread" && ctx->io_backend != "direct") {
    std::fprintf(stderr, "--io-backend must be pread or direct (got %s)\n",
                 ctx->io_backend.c_str());
    return false;
  }
  SetDefaultIoBackend(ctx->io_backend == "direct" ? IoBackend::kDirect
                                                  : IoBackend::kBuffered);
  const std::string kernel_name = flags.GetString("kernel", "");
  if (!kernel_name.empty()) {
    Status kst = ParseBatchKernel(kernel_name, &ctx->kernel);
    if (!kst.ok()) {
      std::fprintf(stderr, "--kernel: %s\n", kst.ToString().c_str());
      return false;
    }
    ctx->kernel_set = true;
  }
  const int64_t kernel_threads = flags.GetInt("kernel-threads", 0);
  const int64_t kernel_granularity = flags.GetInt("kernel-granularity", 0);
  if (kernel_threads < 0) {
    std::fprintf(stderr, "--kernel-threads must be >= 0\n");
    return false;
  }
  if (kernel_granularity < 0) {
    std::fprintf(stderr, "--kernel-granularity must be >= 0\n");
    return false;
  }
  ctx->kernel_threads = static_cast<uint32_t>(kernel_threads);
  ctx->kernel_granularity = static_cast<uint32_t>(kernel_granularity);
  ctx->io_threads = static_cast<int>(threads);
  ctx->prefetch_depth = static_cast<int>(prefetch_depth);
  if (threads > 0) {
    ctx->pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
    SetIoThreadPool(ctx->pool.get());
  } else if (prefetch_depth >= 2) {
    std::fprintf(stderr,
                 "--prefetch-depth=%lld without --threads: falling back "
                 "to the synchronous double buffer\n",
                 static_cast<long long>(prefetch_depth));
  }
  if (cache_blocks > 0) {
    // Installed alongside the audit log so a run's audit replay through
    // SimulateLruCache sees the exact access stream the cache saw. The
    // budget is charged against the semi-external model's constant-block
    // allowance, never the algorithms' O(|V|) grant.
    ctx->cache = std::make_unique<BufferManager>(
        static_cast<uint64_t>(cache_blocks),
        ctx->cache_policy == "clock" ? EvictionPolicy::kClock
                                     : EvictionPolicy::kLru);
    SetBufferManager(ctx->cache.get());
    std::fprintf(stderr,
                 "cache: %lld blocks, %s eviction (%.1f MiB charged to "
                 "the semi-external memory model)\n",
                 static_cast<long long>(cache_blocks),
                 ctx->cache_policy.c_str(),
                 static_cast<double>(TheoryCacheMemoryBytes(
                     static_cast<uint64_t>(cache_blocks),
                     kDefaultBlockSize)) /
                     (1024.0 * 1024.0));
  }
  if (ctx->cache == nullptr && ctx->prefetch_depth >= 2 &&
      ctx->pool != nullptr) {
    // The read-ahead setting rides on the cache seam; a budget-0 cache
    // caches nothing (every read misses, installs drop — same logical
    // I/O and results as no cache) and just carries the pipeline depth.
    ctx->cache = std::make_unique<BufferManager>(0);
    SetBufferManager(ctx->cache.get());
  }
  if (ctx->cache != nullptr) {
    ctx->cache->set_prefetch_depth(ctx->prefetch_depth);
  }
  if (ctx->tracer != nullptr || ctx->report != nullptr) {
    // A sink is watching: turn on the costlier sampled metrics too, and
    // profile per-phase CPU/RSS/I/O alongside the spans.
    SetMetricsEnabled(true);
    ctx->profiler = std::make_unique<PhaseProfiler>();
    SetPhaseProfiler(ctx->profiler.get());
  }
  ctx->full_iterations = flags.GetBool("full-iterations", false);
  const bool progress = flags.GetBool("progress", false);
  const int64_t watchdog_ms = flags.GetInt("watchdog-ms", 0);
  const int64_t telemetry_interval =
      flags.GetInt("telemetry-interval-ms", 200);
  if (progress || watchdog_ms > 0 || ctx->report != nullptr) {
    TelemetryOptions topts;
    topts.sample_interval_ms =
        telemetry_interval > 0 ? static_cast<uint64_t>(telemetry_interval)
                               : 200;
    if (watchdog_ms > 0) {
      topts.watchdog_window_ms = static_cast<uint64_t>(watchdog_ms);
    }
    topts.render_status = progress;
    ctx->telemetry = std::make_unique<Telemetry>(topts);
    SetTelemetry(ctx->telemetry.get());
  }
  Status st = DatasetBuilder::Create(&ctx->datasets);
  if (!st.ok()) {
    std::fprintf(stderr, "dataset scratch dir: %s\n", st.ToString().c_str());
    return false;
  }
  if (flags_out != nullptr) *flags_out = flags;
  return true;
}

// Runs `algorithm` on `path` under `options`; when ctx.verify is set the
// result is compared against Tarjan on an in-memory copy.
inline RunOutcome Run(const BenchContext& ctx, SccAlgorithm algorithm,
                      const std::string& path,
                      const SemiExternalOptions& options) {
  std::optional<SccResult> oracle;
  if (ctx.verify) {
    Digraph graph;
    Status st = LoadDigraph(path, &graph, nullptr);
    if (st.ok()) oracle = TarjanScc(graph);
  }
  std::fprintf(stderr, "  running %-8s on %s ...\n",
               AlgorithmName(algorithm), path.c_str());
  RunOutcome outcome = RunAlgorithmOnFile(
      algorithm, path, options, oracle ? &*oracle : nullptr);
  std::fprintf(stderr, "  %-8s: %s, %s (%s)\n", AlgorithmName(algorithm),
               TimeCell(outcome).c_str(), outcome.stats.io.Format().c_str(),
               outcome.status.ToString().c_str());
  if (outcome.io_budget.has_value()) {
    std::fprintf(stderr, "  %-8s: io-budget %s\n", AlgorithmName(algorithm),
                 outcome.io_budget->Format().c_str());
    if (ctx.audit != nullptr) {
      ctx.audit->AddBudget(
          ToAuditBudgetRecord(*outcome.io_budget, algorithm, path));
    }
  }
  if (ctx.report != nullptr) {
    RunReportEntry entry = MakeReportEntry(ctx.name, algorithm, path, outcome);
    entry.full_iterations = ctx.full_iterations;
    if (ctx.telemetry != nullptr) {
      // Attribute only the fires this run added (the engine's count is
      // cumulative across the whole bench).
      const uint64_t fires = ctx.telemetry->watchdog_fires();
      entry.watchdog_fires = fires - ctx.watchdog_fires_seen;
      ctx.watchdog_fires_seen = fires;
    }
    if (ctx.cache != nullptr) {
      entry.cache_blocks = ctx.cache->budget_blocks();
      entry.cache_memory_bytes =
          TheoryCacheMemoryBytes(ctx.cache->budget_blocks(),
                                 kDefaultBlockSize);
      entry.prefetch_depth =
          static_cast<uint64_t>(ctx.cache->prefetch_depth());
      entry.cache_policy = ctx.cache_policy;
    }
    if (ctx.cache != nullptr || ctx.io_backend != "pread") {
      // Recorded next to the cache config; a plain run on the default
      // buffered backend keeps its historical report line.
      entry.io_backend = ctx.io_backend;
    }
    if (ctx.pool != nullptr) {
      entry.io_threads = static_cast<uint64_t>(ctx.pool->num_threads());
    }
    if (ctx.kernel_set) {
      entry.kernel_name = BatchKernelName(ctx.kernel);
      entry.kernel_threads = ctx.kernel_threads;
      entry.kernel_granularity = ctx.kernel_granularity;
    }
    Status st = ctx.report->Append(entry);
    if (!st.ok()) {
      std::fprintf(stderr, "report: %s\n", st.ToString().c_str());
    }
  }
  return outcome;
}

// Table 2 of the paper, scaled. At scale = 1.0 these are the paper's
// parameter defaults (|V| = 30M, degree 5, Massive-SCC 400K, Large-SCC
// 8K x 50, Small-SCC 40 x 10K).
struct Table2Defaults {
  uint64_t nodes;
  double degree = 5.0;
  uint64_t massive_size;
  uint64_t large_size;
  uint64_t large_count = 50;
  uint64_t small_size = 40;
  uint64_t small_count;
};

inline Table2Defaults ScaledTable2(double scale) {
  Table2Defaults d;
  d.nodes = static_cast<uint64_t>(scale * 30e6);
  d.massive_size = std::max<uint64_t>(100,
                                      static_cast<uint64_t>(scale * 400e3));
  d.large_size = std::max<uint64_t>(8, static_cast<uint64_t>(scale * 8e3));
  d.small_count = std::max<uint64_t>(10,
                                     static_cast<uint64_t>(scale * 10e3));
  return d;
}

// A labeled sweep point (one x-axis value of a figure).
struct SweepPoint {
  std::string label;
  std::string path;
};

// Runs `algorithms` over every sweep point and prints the two series the
// paper's figures plot: processing time (a) and # of I/Os (b).
inline void PrintSweep(const BenchContext& ctx, const std::string& title,
                       const std::vector<SweepPoint>& points,
                       const std::vector<SccAlgorithm>& algorithms) {
  std::vector<std::string> headers = {title};
  for (SccAlgorithm a : algorithms) headers.push_back(AlgorithmName(a));
  Table time_table(headers);
  Table io_table(headers);
  for (const SweepPoint& point : points) {
    DatasetStats ds;
    (void)DatasetBuilder::Describe(point.path, &ds);
    SemiExternalOptions options = ctx.Options(ds.node_count);
    std::vector<std::string> time_row = {point.label};
    std::vector<std::string> io_row = {point.label};
    for (SccAlgorithm algorithm : algorithms) {
      RunOutcome outcome = Run(ctx, algorithm, point.path, options);
      time_row.push_back(TimeCell(outcome));
      io_row.push_back(IoCell(outcome));
    }
    time_table.AddRow(time_row);
    io_table.AddRow(io_row);
  }
  std::printf("\n(a) processing time\n");
  time_table.Print();
  std::printf("\n(b) # of block I/Os\n");
  io_table.Print();
  if (ctx.csv != nullptr) {
    std::fprintf(ctx.csv, "# %s: time\n", title.c_str());
    time_table.AppendCsv(ctx.csv);
    std::fprintf(ctx.csv, "# %s: block I/Os\n", title.c_str());
    io_table.AppendCsv(ctx.csv);
    std::fflush(ctx.csv);
  }
}

inline void PrintDatasetLine(const std::string& label,
                             const std::string& path) {
  DatasetStats stats;
  if (DatasetBuilder::Describe(path, &stats).ok()) {
    std::printf("%s: %s nodes, %s edges\n", label.c_str(),
                FormatCount(stats.node_count).c_str(),
                FormatCount(stats.edge_count).c_str());
  }
}

}  // namespace bench
}  // namespace ioscc

#endif  // IOSCC_BENCH_BENCH_COMMON_H_
