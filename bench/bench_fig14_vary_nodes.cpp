// Regenerates Fig. 14: synthetic graphs, varying |V| (paper: 30M..70M;
// scaled by --scale) for the Massive-SCC, Large-SCC and Small-SCC
// families; (a,c,e) time and (b,d,f) # of I/Os.
//
// Shape to reproduce: 1PB-SCC best everywhere; 1P-SCC close on I/O;
// DFS-SCC grows sharply; 2P-SCC hits the cap on larger graphs
// (Massive-SCC above 40M in the paper).

#include "bench/bench_common.h"

namespace ioscc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchContext ctx;
  ctx.scale = 0.005;
  ctx.time_limit = 12.0;
  if (!InitBench(argc, argv, &ctx)) return 1;
  const Table2Defaults defaults = ScaledTable2(ctx.scale);

  const std::vector<SccAlgorithm> algorithms = {
      SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
      SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs};

  struct Family {
    const char* name;
    std::function<PlantedSccSpec(uint64_t nodes)> spec;
  };
  const std::vector<Family> families = {
      {"Massive-SCC",
       [&](uint64_t nodes) {
         return MassiveSccSpec(nodes, defaults.degree,
                               defaults.massive_size, ctx.seed);
       }},
      {"Large-SCC",
       [&](uint64_t nodes) {
         return LargeSccSpec(nodes, defaults.degree, defaults.large_size,
                             defaults.large_count, ctx.seed);
       }},
      {"Small-SCC",
       [&](uint64_t nodes) {
         return SmallSccSpec(nodes, defaults.degree, defaults.small_size,
                             defaults.small_count, ctx.seed);
       }},
  };

  std::printf("== Fig. 14: synthetic data, varying node count ==\n");
  for (const Family& family : families) {
    std::printf("\n--- %s ---\n", family.name);
    std::vector<SweepPoint> points;
    for (int millions : {30, 40, 50, 60, 70}) {
      uint64_t nodes = static_cast<uint64_t>(ctx.scale * millions * 1e6);
      SweepPoint point;
      point.label = FormatCompact(nodes);
      Status st = ctx.datasets->FromPlantedSpec(family.spec(nodes),
                                                &point.path);
      if (!st.ok()) {
        std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
        return 1;
      }
      points.push_back(point);
    }
    PrintSweep(ctx, "|V|", points, algorithms);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
