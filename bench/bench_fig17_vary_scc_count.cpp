// Regenerates Fig. 17: synthetic graphs, varying the *number* of planted
// SCCs (paper: Large 30..70 of 8K nodes; Small 6K..14K of 40 nodes,
// counts scaled by --scale); (a,c) time and (b,d) # of I/Os.
//
// Shape to reproduce: 1PB-SCC and 1P-SCC finish everything with 1PB
// ahead; 2P-SCC cannot handle Large-SCC and takes hours on Small-SCC;
// DFS-SCC finishes nothing.

#include "bench/bench_common.h"

namespace ioscc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchContext ctx;
  ctx.scale = 0.005;
  ctx.time_limit = 12.0;
  if (!InitBench(argc, argv, &ctx)) return 1;
  const Table2Defaults defaults = ScaledTable2(ctx.scale);

  const std::vector<SccAlgorithm> algorithms = {
      SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
      SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs};

  std::printf("== Fig. 17: synthetic data, varying the number of SCCs "
              "==\n");
  {
    std::printf("\n--- Large-SCC (size %llu) ---\n",
                static_cast<unsigned long long>(defaults.large_size));
    std::vector<SweepPoint> points;
    for (int count : {30, 40, 50, 60, 70}) {
      SweepPoint point;
      point.label = std::to_string(count);
      Status st = ctx.datasets->FromPlantedSpec(
          LargeSccSpec(defaults.nodes, defaults.degree,
                       defaults.large_size, count, ctx.seed),
          &point.path);
      if (!st.ok()) return 1;
      points.push_back(point);
    }
    PrintSweep(ctx, "# SCCs", points, algorithms);
  }
  {
    std::printf("\n--- Small-SCC (size %llu) ---\n",
                static_cast<unsigned long long>(defaults.small_size));
    std::vector<SweepPoint> points;
    for (int k : {6, 8, 10, 12, 14}) {
      uint64_t count = std::max<uint64_t>(
          6, static_cast<uint64_t>(ctx.scale * k * 1e3));
      SweepPoint point;
      point.label = FormatCompact(count);
      Status st = ctx.datasets->FromPlantedSpec(
          SmallSccSpec(defaults.nodes, defaults.degree,
                       defaults.small_size, count, ctx.seed),
          &point.path);
      if (!st.ok()) return 1;
      points.push_back(point);
    }
    PrintSweep(ctx, "# SCCs", points, algorithms);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ioscc

int main(int argc, char** argv) {
  return ioscc::bench::BenchExitCode(ioscc::bench::Main(argc, argv));
}
